//! Cross-host cluster scenario: tenants spanning hosts, drained migrations.
//!
//! Where [`crate::bursty`] drives one host's control plane, this runner
//! drives a whole [`Cluster`]: tenant VMs on *different hosts* stream
//! seeded, byte-verified payloads to an echo server attached at the
//! top-of-rack switch, so every byte crosses host switch → uplink → ToR and
//! back. Tenants reopen their connection every few chunks (short-connection
//! behaviour), which is what makes a *drained* cross-host migration
//! observable end to end: after [`Cluster::migrate_vm`] the next connection
//! opens through the destination host's NSM while the current one keeps
//! streaming on the source host until its rotation point — at which moment
//! the source share empties, the drain completes, and the source NSM scales
//! to zero, all without a single byte lost or corrupted.
//!
//! Migrations come from two places, freely mixed: a scripted plan (fire at
//! a virtual time, like a fault plan) and the cluster's own placement loop
//! when a [`nk_types::ClusterPolicy`] is installed. Scripted entries may be
//! *warm* ([`ClusterScenarioConfig::with_warm_migration`]): the pinned
//! connection is transplanted mid-stream — the tenant's socket reappears on
//! the destination host under the same id and the byte stream continues
//! without a reconnect, which is what lets a
//! [`ClusterTenant::long_lived`] transfer (no rotation points, so a drained
//! migration would stall until the very end) migrate mid-flight. The report
//! carries the full [`ClusterEvent`] log plus its digest, so tests and the
//! CI determinism job can assert byte-identical replays.

use nk_cluster::{Cluster, ClusterStats};
use nk_ctrl::PlanEvent;
use nk_obs::ObsDump;
use nk_types::{
    ClusterConfig, ClusterEvent, FaultPlan, HostId, NkError, NkResult, NsmId, SockAddr, SocketApi,
    SocketId, VmId,
};
use std::collections::BTreeMap;

use crate::scenario::seeded_payload;

/// One tenant's offered load (the cluster analogue of
/// [`crate::bursty::BurstyClient`]).
#[derive(Clone, Debug)]
pub struct ClusterTenant {
    /// The VM the tenant runs in (its home host comes from the cluster
    /// configuration).
    pub vm: VmId,
    /// Virtual time at which the tenant starts transferring.
    pub start_ns: u64,
    /// Bytes the tenant must deliver (and see echoed) end to end.
    pub total_bytes: usize,
    /// Stop-and-wait chunk size.
    pub chunk: usize,
    /// Chunks transferred per connection before the tenant reopens (short
    /// connections; migrations take effect at these rotation points).
    pub chunks_per_conn: usize,
}

impl ClusterTenant {
    /// A 64 KiB transfer starting at `start_ns`, reconnecting every four
    /// chunks.
    pub fn new(vm: VmId, start_ns: u64) -> Self {
        ClusterTenant {
            vm,
            start_ns,
            total_bytes: 64 * 1024,
            chunk: 2048,
            chunks_per_conn: 4,
        }
    }

    /// Set the transfer size (builder style).
    pub fn with_total_bytes(mut self, bytes: usize) -> Self {
        self.total_bytes = bytes;
        self
    }

    /// Keep one connection for the whole transfer (builder style). A
    /// long-lived connection never reaches a rotation point, so a *drained*
    /// migration would stall until the transfer ends — the scenario warm
    /// migration exists for.
    pub fn long_lived(mut self) -> Self {
        self.chunks_per_conn = 0;
        self
    }
}

/// A migration scripted against virtual time (the placement analogue of a
/// fault-plan entry).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedMigration {
    /// Fire once virtual time reaches this.
    pub at_ns: u64,
    /// The VM to move (from wherever its home is at that moment).
    pub vm: VmId,
    /// The destination host.
    pub to: HostId,
    /// Warm mode: transplant pinned connections instead of draining them.
    pub warm: bool,
}

/// A host evacuation scripted against virtual time: once reached, the
/// whole host is cleared through the plan/apply machinery
/// ([`Cluster::evacuate_host`]) — warm per VM where the exclusivity guard
/// allows, drained otherwise, with the emptied shares scaled to zero at the
/// plan tail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedEvacuation {
    /// Fire once virtual time reaches this.
    pub at_ns: u64,
    /// The host to clear.
    pub host: HostId,
    /// VM chains started per plan wave (bounded concurrency).
    pub pace: usize,
}

/// Configuration of one cluster scenario run.
#[derive(Clone, Debug)]
pub struct ClusterScenarioConfig {
    /// The cluster under test.
    pub cluster: ClusterConfig,
    /// Seed for the transferred payloads (each tenant derives its own).
    pub seed: u64,
    /// Address of the echo server attached at the top-of-rack switch.
    pub server_ip: u32,
    /// Port of the echo server.
    pub server_port: u16,
    /// The tenants and their activity windows.
    pub tenants: Vec<ClusterTenant>,
    /// Scripted cross-host migrations.
    pub migrations: Vec<PlannedMigration>,
    /// Scripted host evacuations.
    pub evacuations: Vec<PlannedEvacuation>,
    /// Fault plans installed per host before the run starts (the cluster
    /// analogue of [`crate::scenario::ScenarioConfig::with_faults`]).
    pub fault_plans: Vec<(HostId, FaultPlan)>,
    /// Step budget (livelock guard).
    pub max_steps: usize,
    /// Steps to keep running after every tenant finished, so drains
    /// complete and the placement loop observes the ramp-down.
    pub drain_steps: usize,
    /// Virtual time per step in nanoseconds.
    pub dt_ns: u64,
}

impl ClusterScenarioConfig {
    /// A scenario over `cluster` with pacing matching the other runners.
    /// The default server address is outside every host's block, so all
    /// tenant traffic is cross-host by construction.
    pub fn new(cluster: ClusterConfig) -> Self {
        ClusterScenarioConfig {
            cluster,
            seed: 1,
            server_ip: 0xC0A8_0001, // 192.168.0.1
            server_port: 7,
            tenants: Vec::new(),
            migrations: Vec::new(),
            evacuations: Vec::new(),
            fault_plans: Vec::new(),
            max_steps: 40_000,
            drain_steps: 200,
            dt_ns: 100_000,
        }
    }

    /// Add a tenant (builder style).
    pub fn with_tenant(mut self, tenant: ClusterTenant) -> Self {
        self.tenants.push(tenant);
        self
    }

    /// Script a drained migration (builder style).
    pub fn with_migration(mut self, at_ns: u64, vm: VmId, to: HostId) -> Self {
        self.migrations.push(PlannedMigration {
            at_ns,
            vm,
            to,
            warm: false,
        });
        self
    }

    /// Script a *warm* migration (builder style): pinned connections move
    /// with the VM instead of draining on the source.
    pub fn with_warm_migration(mut self, at_ns: u64, vm: VmId, to: HostId) -> Self {
        self.migrations.push(PlannedMigration {
            at_ns,
            vm,
            to,
            warm: true,
        });
        self
    }

    /// Script a planned host evacuation (builder style).
    pub fn with_evacuation(mut self, at_ns: u64, host: HostId, pace: usize) -> Self {
        self.evacuations
            .push(PlannedEvacuation { at_ns, host, pace });
        self
    }

    /// Install a fault plan on one of the cluster's hosts before the run
    /// starts (builder style). Fault events fire against virtual time as
    /// the cluster steps, exactly as on a standalone host.
    pub fn with_fault_plan(mut self, host: HostId, plan: FaultPlan) -> Self {
        self.fault_plans.push((host, plan));
        self
    }

    /// Set the payload seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Everything a finished cluster run reports. Two runs of the same
/// configuration must produce equal reports (the determinism guarantee the
/// CI digest job replays).
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterScenarioReport {
    /// True when every tenant delivered and verified all its bytes.
    pub completed: bool,
    /// Cluster steps executed.
    pub steps: u64,
    /// Bytes echoed back and verified, summed over tenants.
    pub bytes_verified: u64,
    /// Socket errors observed across tenants.
    pub errors_observed: u64,
    /// Reconnects forced by errors (scheduled rotations are not counted).
    pub reconnects: u64,
    /// The complete cluster event log (migrations, drains, retirements).
    pub events: Vec<ClusterEvent>,
    /// Every evacuation plan's event log, in execution order.
    pub plan_events: Vec<PlanEvent>,
    /// FNV-1a digest of the serialized event log.
    pub event_digest: u64,
    /// Host serving each tenant's new connections at the end of the run.
    pub final_homes: BTreeMap<VmId, HostId>,
    /// Core allocation of every alive NSM at the end of the run.
    pub final_nsm_cores: BTreeMap<(HostId, NsmId), usize>,
    /// Cluster scheduler and placement counters.
    pub stats: ClusterStats,
    /// The flight recorder's snapshot at the end of the run: merged event
    /// ring, per-epoch latency quantiles, migration phase timelines, and
    /// the hot-flow table ([`nk_obs::FlightRecorder`]).
    pub obs: ObsDump,
}

/// Per-tenant transfer state: the bursty stop-and-wait machine plus the
/// host its current socket lives on.
struct TenantState {
    spec: ClusterTenant,
    payload: Vec<u8>,
    /// The current connection and the host it was opened through. During a
    /// drain this may lag behind the VM's home: pinned connections finish
    /// on the source host.
    sock: Option<(HostId, SocketId)>,
    established: bool,
    off: usize,
    sent_in_chunk: usize,
    acked_in_chunk: usize,
    chunks_on_conn: usize,
    errors_observed: u64,
    reconnects: u64,
}

impl TenantState {
    fn done(&self) -> bool {
        self.off >= self.spec.total_bytes
    }
}

/// A runnable cluster scenario (see the module docs).
pub struct ClusterScenario {
    cfg: ClusterScenarioConfig,
}

impl ClusterScenario {
    /// Build a scenario from its configuration.
    pub fn new(cfg: ClusterScenarioConfig) -> Self {
        ClusterScenario { cfg }
    }

    /// Run to completion (or the step budget) and report.
    ///
    /// Panics with a descriptive message when an invariant is violated —
    /// byte corruption or cluster scheduler accounting drift.
    pub fn run(&self) -> NkResult<ClusterScenarioReport> {
        let cfg = &self.cfg;
        let mut cluster = Cluster::new(cfg.cluster.clone())?;
        for (host, plan) in &cfg.fault_plans {
            cluster
                .host_mut(*host)
                .ok_or(NkError::NotFound)?
                .install_fault_plan(plan)?;
        }

        let server = cluster.add_remote(cfg.server_ip);
        let listener = server.socket();
        server.bind(listener, SockAddr::new(0, cfg.server_port))?;
        server.listen(listener, 64)?;
        let mut server_conns: Vec<SocketId> = Vec::new();
        let mut echo_buf = vec![0u8; 16 * 1024];

        let mut tenants: Vec<TenantState> = cfg
            .tenants
            .iter()
            .map(|spec| TenantState {
                payload: seeded_payload(
                    cfg.seed ^ (spec.vm.raw() as u64).wrapping_mul(0x9E37_79B9),
                    spec.total_bytes,
                ),
                spec: spec.clone(),
                sock: None,
                established: false,
                off: 0,
                sent_in_chunk: 0,
                acked_in_chunk: 0,
                chunks_on_conn: 0,
                errors_observed: 0,
                reconnects: 0,
            })
            .collect();
        let mut pending_migrations = cfg.migrations.clone();
        pending_migrations.sort_by_key(|m| (m.at_ns, m.vm));
        let mut pending_evacuations = cfg.evacuations.clone();
        pending_evacuations.sort_by_key(|e| (e.at_ns, e.host));

        let mut steps = 0u64;
        let mut drained = 0usize;
        while (steps as usize) < cfg.max_steps {
            if tenants.iter().all(TenantState::done) {
                if drained >= cfg.drain_steps {
                    break;
                }
                drained += 1;
            }
            let now = cluster.now_ns();
            // Scripted migrations fire once their time has come; a plan
            // entry whose VM already lives on the target is simply spent.
            while pending_migrations.first().is_some_and(|m| m.at_ns <= now) {
                let m = pending_migrations.remove(0);
                if let Some(from) = cluster.home_of(m.vm) {
                    if from != m.to {
                        if m.warm {
                            cluster.migrate_vm_warm(m.vm, from, m.to)?;
                        } else {
                            cluster.migrate_vm(m.vm, from, m.to)?;
                        }
                    }
                }
            }
            // Scripted evacuations clear whole hosts through the planned,
            // revertible path; an evacuation of an already-empty host
            // compiles to a trivially committing plan.
            while pending_evacuations.first().is_some_and(|e| e.at_ns <= now) {
                let e = pending_evacuations.remove(0);
                cluster.evacuate_host(e.host, e.pace)?;
            }
            let target = SockAddr::new(cfg.server_ip, cfg.server_port);
            for t in tenants.iter_mut() {
                if now >= t.spec.start_ns && !t.done() {
                    Self::drive_tenant(&mut cluster, t, target);
                }
            }
            cluster.step(cfg.dt_ns);
            Self::drive_server(
                &mut cluster,
                cfg.server_ip,
                listener,
                &mut server_conns,
                &mut echo_buf,
            );
            steps += 1;
            if steps.is_multiple_of(64) {
                Self::check_sched(&cluster);
            }
        }
        let completed = tenants.iter().all(TenantState::done);

        // Settle: close every tenant socket so outstanding drains complete.
        for t in tenants.iter_mut() {
            if let Some((host, s)) = t.sock.take() {
                if let Some(g) = cluster.guest_on(host, t.spec.vm) {
                    let _ = g.close(s);
                }
            }
        }
        for _ in 0..50 {
            cluster.step(cfg.dt_ns);
        }
        Self::check_sched(&cluster);

        let final_homes = tenants
            .iter()
            .filter_map(|t| cluster.home_of(t.spec.vm).map(|h| (t.spec.vm, h)))
            .collect();
        let mut final_nsm_cores = BTreeMap::new();
        for host_id in cluster.host_ids() {
            let host = cluster.host(host_id).expect("listed host exists");
            for nsm in host.config().nsms.clone() {
                if let Some(cores) = host.nsm_cores(nsm.id) {
                    final_nsm_cores.insert((host_id, nsm.id), cores);
                }
            }
        }
        Ok(ClusterScenarioReport {
            completed,
            steps,
            bytes_verified: tenants.iter().map(|t| t.off as u64).sum(),
            errors_observed: tenants.iter().map(|t| t.errors_observed).sum(),
            reconnects: tenants.iter().map(|t| t.reconnects).sum(),
            events: cluster.events().to_vec(),
            plan_events: cluster.plan_events().to_vec(),
            event_digest: cluster.event_digest(),
            final_homes,
            final_nsm_cores,
            stats: cluster.stats(),
            obs: cluster.obs_dump(),
        })
    }

    /// One tenant iteration: (re)connect through the VM's *current home*,
    /// push the chunk, verify echoed bytes, rotate the connection every few
    /// chunks.
    fn drive_tenant(cluster: &mut Cluster, t: &mut TenantState, server: SockAddr) {
        let chunk_len = t.spec.chunk.min(t.spec.total_bytes - t.off);
        let Some((host, sock)) = t.sock else {
            // New connections always open on the home host — this is how a
            // migration takes effect at the next rotation.
            let Some(home) = cluster.home_of(t.spec.vm) else {
                return;
            };
            let Some(g) = cluster.guest_on(home, t.spec.vm) else {
                return;
            };
            if let Ok(s) = g.socket() {
                if g.connect(s, server).is_ok() {
                    t.sock = Some((home, s));
                    t.established = false;
                    t.sent_in_chunk = 0;
                    t.acked_in_chunk = 0;
                    t.chunks_on_conn = 0;
                } else {
                    let _ = g.close(s);
                }
            }
            return;
        };
        let Some(g) = cluster.guest_on(host, t.spec.vm) else {
            // The source-side instance is gone. After a *warm* migration
            // the socket reappears — same id, same connection — under the
            // VM's new home: follow it there and keep streaming. Otherwise
            // (defensive; a drained instance only retires unpinned) reopen
            // at the current home.
            if let Some(home) = cluster.home_of(t.spec.vm) {
                if home != host
                    && cluster
                        .guest_on(home, t.spec.vm)
                        .is_some_and(|g| g.has_socket(sock))
                {
                    t.sock = Some((home, sock));
                    return;
                }
            }
            t.sock = None;
            t.established = false;
            return;
        };

        let ev = g.poll(sock);
        if ev.error() || ev.hup() {
            t.errors_observed += 1;
            t.reconnects += 1;
            let _ = g.close(sock);
            t.sock = None;
            t.established = false;
            return;
        }
        if !t.established {
            if ev.writable() {
                t.established = true;
            } else {
                return;
            }
        }
        if t.sent_in_chunk < chunk_len {
            let from = t.off + t.sent_in_chunk;
            let to = t.off + chunk_len;
            match g.send(sock, &t.payload[from..to]) {
                Ok(n) => t.sent_in_chunk += n,
                Err(NkError::WouldBlock) => {}
                Err(_) => return,
            }
        }
        let mut buf = [0u8; 4096];
        loop {
            match g.recv(sock, &mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    let at = t.off + t.acked_in_chunk;
                    assert!(
                        at + n <= t.off + chunk_len,
                        "{:?}: server echoed past the outstanding chunk",
                        t.spec.vm,
                    );
                    assert_eq!(
                        &buf[..n],
                        &t.payload[at..at + n],
                        "{:?}: echoed bytes diverge from the payload at offset {at}",
                        t.spec.vm,
                    );
                    t.acked_in_chunk += n;
                }
                Err(_) => break,
            }
        }
        if t.acked_in_chunk == chunk_len && chunk_len > 0 {
            t.off += chunk_len;
            t.sent_in_chunk = 0;
            t.acked_in_chunk = 0;
            t.chunks_on_conn += 1;
            if t.spec.chunks_per_conn > 0 && t.chunks_on_conn >= t.spec.chunks_per_conn {
                // Rotation point: close here, reopen at the current home on
                // the next iteration — a drained migration's handover.
                let _ = g.close(sock);
                t.sock = None;
                t.established = false;
            }
        }
    }

    /// Accept and echo on the ToR-attached server.
    fn drive_server(
        cluster: &mut Cluster,
        server_ip: u32,
        listener: SocketId,
        conns: &mut Vec<SocketId>,
        buf: &mut [u8],
    ) {
        let Some(server) = cluster.remote_mut(server_ip) else {
            return;
        };
        while let Ok((conn, _)) = server.accept(listener) {
            conns.push(conn);
        }
        conns.retain(|&conn| loop {
            match server.recv(conn, buf) {
                Ok(0) => {
                    let _ = server.close(conn);
                    break false;
                }
                Ok(n) => {
                    let _ = server.send(conn, &buf[..n]);
                }
                Err(NkError::WouldBlock) => break true,
                Err(_) => {
                    let _ = server.close(conn);
                    break false;
                }
            }
        });
    }

    /// Cluster scheduler accounting: every step ends in quiescence or at
    /// the round bound.
    fn check_sched(cluster: &Cluster) {
        let s = cluster.stats();
        assert_eq!(
            s.quiescent_exits + s.round_limit_hits,
            s.steps,
            "cluster steps unaccounted for: {s:?}",
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nk_obs::MigrationPhase;
    use nk_types::{HostConfig, NsmConfig, VmConfig, VmToNsmPolicy};

    fn host(id: u8, vms: &[u8]) -> HostConfig {
        let mut cfg = HostConfig::new()
            .with_host_id(HostId(id))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)));
        for vm in vms {
            cfg = cfg.with_vm(VmConfig::new(VmId(*vm)));
        }
        cfg
    }

    #[test]
    fn cross_host_transfer_completes_without_migrations() {
        let cluster = ClusterConfig::new()
            .with_host(host(1, &[1]))
            .with_host(host(2, &[2]));
        let report = ClusterScenario::new(
            ClusterScenarioConfig::new(cluster)
                .with_tenant(ClusterTenant::new(VmId(1), 0).with_total_bytes(16 * 1024))
                .with_tenant(ClusterTenant::new(VmId(2), 0).with_total_bytes(16 * 1024)),
        )
        .run()
        .unwrap();
        assert!(report.completed, "{report:?}");
        assert_eq!(report.bytes_verified, 32 * 1024);
        assert_eq!(report.errors_observed, 0);
        assert!(report.events.is_empty());
        assert_eq!(report.final_homes[&VmId(1)], HostId(1));
        assert_eq!(report.final_homes[&VmId(2)], HostId(2));
    }

    /// A long-lived connection (no rotation points) crosses a warm
    /// migration mid-stream: no reconnect, no errors, every byte verified.
    #[test]
    fn warm_migration_carries_a_long_lived_connection() {
        let cluster = ClusterConfig::new()
            .with_host(host(1, &[1]))
            .with_host(host(2, &[]));
        let report = ClusterScenario::new(
            ClusterScenarioConfig::new(cluster)
                .with_tenant(
                    ClusterTenant::new(VmId(1), 0)
                        .with_total_bytes(32 * 1024)
                        .long_lived(),
                )
                .with_warm_migration(1_000_000, VmId(1), HostId(2)),
        )
        .run()
        .unwrap();
        assert!(report.completed, "{report:?}");
        assert_eq!(report.bytes_verified, 32 * 1024);
        assert_eq!(report.errors_observed, 0);
        assert_eq!(report.reconnects, 0, "warm handover must be seamless");
        assert_eq!(report.stats.warm_migrations, 1);
        assert_eq!(report.stats.drains_completed, 0);
        assert_eq!(report.final_homes[&VmId(1)], HostId(2));
        assert_eq!(report.final_nsm_cores[&(HostId(1), NsmId(1))], 0);
        // The flight recorder saw the whole warm chain for the VM, in
        // phase order, every window closed successfully.
        let phases: Vec<_> = report
            .obs
            .phases
            .iter()
            .filter(|w| w.vm == Some(VmId(1)))
            .collect();
        assert_eq!(
            phases.iter().map(|w| w.phase).collect::<Vec<_>>(),
            vec![
                MigrationPhase::Freeze,
                MigrationPhase::Export,
                MigrationPhase::Reroute,
                MigrationPhase::Install,
                MigrationPhase::Thaw,
            ],
            "{:?}",
            report.obs.phases
        );
        assert!(phases.iter().all(|w| w.ok));
        assert!(
            !report.obs.epochs.is_empty(),
            "a multi-ms run must seal latency epochs"
        );
        assert!(
            !report.obs.flows.is_empty(),
            "cross-host echo traffic must populate the hot-flow table"
        );
    }

    /// A scripted host evacuation clears the host mid-stream through the
    /// plan/apply machinery: the long-lived tenant's connection rides the
    /// warm move without reconnecting, the emptied share is scaled to
    /// zero, and the plan event log lands in the report.
    #[test]
    fn scripted_evacuation_clears_the_host_without_reconnects() {
        use nk_ctrl::PlanEventKind;
        let cluster = ClusterConfig::new()
            .with_host(host(1, &[1]))
            .with_host(host(2, &[]));
        let report = ClusterScenario::new(
            ClusterScenarioConfig::new(cluster)
                .with_tenant(
                    ClusterTenant::new(VmId(1), 0)
                        .with_total_bytes(32 * 1024)
                        .long_lived(),
                )
                .with_evacuation(1_000_000, HostId(1), 2),
        )
        .run()
        .unwrap();
        assert!(report.completed, "{report:?}");
        assert_eq!(report.bytes_verified, 32 * 1024);
        assert_eq!(report.errors_observed, 0);
        assert_eq!(report.reconnects, 0, "warm evacuation must be seamless");
        assert_eq!(report.stats.evac_plans, 1);
        assert_eq!(report.stats.evac_commits, 1);
        assert_eq!(report.stats.warm_migrations, 1);
        assert_eq!(report.final_homes[&VmId(1)], HostId(2));
        assert_eq!(report.final_nsm_cores[&(HostId(1), NsmId(1))], 0);
        assert!(
            matches!(
                report.plan_events.last().map(|e| e.kind),
                Some(PlanEventKind::PlanCommitted { .. })
            ),
            "{:?}",
            report.plan_events
        );
    }

    #[test]
    fn scripted_migration_is_spent_even_when_vm_is_already_there() {
        let cluster = ClusterConfig::new()
            .with_host(host(1, &[1]))
            .with_host(host(2, &[]));
        let report = ClusterScenario::new(
            ClusterScenarioConfig::new(cluster)
                .with_tenant(ClusterTenant::new(VmId(1), 0).with_total_bytes(8 * 1024))
                .with_migration(0, VmId(1), HostId(1)), // no-op: already home
        )
        .run()
        .unwrap();
        assert!(report.completed);
        assert!(report.events.is_empty(), "{:?}", report.events);
    }
}
