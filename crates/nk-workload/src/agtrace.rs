//! Synthetic application-gateway traffic traces (paper §6.1, Figure 7).
//!
//! The paper uses a September-2018 production trace of "tens of thousands of
//! application gateways" whose utilisation "is very low most of the time" and
//! whose traffic is bursty. That trace is proprietary, so this module
//! generates a synthetic equivalent with the same two properties the
//! multiplexing argument rests on: (1) per-AG load is bursty (short spikes to
//! near the provisioned peak) and (2) the time-average load is a small
//! fraction of the peak. Determinism comes from an explicit seed.

use serde::{Deserialize, Serialize};

/// Configuration of the trace generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AgTraceConfig {
    /// Number of application gateways.
    pub gateways: usize,
    /// Trace length in minutes (the paper plots a one-hour window).
    pub minutes: usize,
    /// Peak requests-per-second an AG is provisioned for (normalised units).
    pub peak_rps: f64,
    /// Mean utilisation as a fraction of the peak (well under 1).
    pub mean_utilisation: f64,
    /// Probability that any given minute is a burst minute.
    pub burst_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AgTraceConfig {
    fn default() -> Self {
        AgTraceConfig {
            gateways: 32,
            minutes: 60,
            peak_rps: 100.0,
            mean_utilisation: 0.18,
            burst_probability: 0.08,
            seed: 2018,
        }
    }
}

/// A generated trace: per-AG, per-minute request rates.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AgTrace {
    /// `rates[g][m]` is gateway `g`'s request rate in minute `m`.
    pub rates: Vec<Vec<f64>>,
    /// Peak each AG was provisioned for.
    pub peak_rps: f64,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn uniform(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

impl AgTrace {
    /// Generate a trace from the configuration.
    pub fn generate(cfg: &AgTraceConfig) -> AgTrace {
        let mut state = cfg.seed;
        let base = cfg.peak_rps * cfg.mean_utilisation;
        let mut rates = Vec::with_capacity(cfg.gateways);
        for g in 0..cfg.gateways {
            let mut series = Vec::with_capacity(cfg.minutes);
            // Each AG gets its own baseline level and diurnal-ish wobble.
            let ag_level = base * (0.5 + uniform(&mut state));
            for m in 0..cfg.minutes {
                let wobble = 1.0 + 0.3 * ((m as f64 / 10.0 + g as f64).sin());
                let mut rate = ag_level * wobble * (0.6 + 0.8 * uniform(&mut state));
                if uniform(&mut state) < cfg.burst_probability {
                    // A burst spikes towards the provisioned peak.
                    rate = cfg.peak_rps * (0.7 + 0.3 * uniform(&mut state));
                }
                series.push(rate.min(cfg.peak_rps));
            }
            rates.push(series);
        }
        AgTrace {
            rates,
            peak_rps: cfg.peak_rps,
        }
    }

    /// Number of gateways in the trace.
    pub fn gateways(&self) -> usize {
        self.rates.len()
    }

    /// Number of minutes in the trace.
    pub fn minutes(&self) -> usize {
        self.rates.first().map_or(0, |r| r.len())
    }

    /// Peak (max over minutes) rate of gateway `g`.
    pub fn peak_of(&self, g: usize) -> f64 {
        self.rates[g].iter().copied().fold(0.0, f64::max)
    }

    /// Time-average rate of gateway `g`.
    pub fn mean_of(&self, g: usize) -> f64 {
        let s = &self.rates[g];
        s.iter().sum::<f64>() / s.len().max(1) as f64
    }

    /// Aggregate rate across a set of gateways in minute `m`.
    pub fn aggregate_at(&self, gateways: &[usize], m: usize) -> f64 {
        gateways.iter().map(|&g| self.rates[g][m]).sum()
    }

    /// Peak of the aggregate rate over a set of gateways.
    pub fn aggregate_peak(&self, gateways: &[usize]) -> f64 {
        (0..self.minutes())
            .map(|m| self.aggregate_at(gateways, m))
            .fold(0.0, f64::max)
    }

    /// Indices of the `n` most-utilised gateways (by mean rate), most
    /// utilised first — Figure 7 plots the top three.
    pub fn top_utilised(&self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.gateways()).collect();
        idx.sort_by(|&a, &b| {
            self.mean_of(b)
                .partial_cmp(&self.mean_of(a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(n);
        idx
    }

    /// How many AGs can be packed onto one NSM of capacity `nsm_rps` such
    /// that the aggregate stays below `max_utilisation * nsm_rps` for at
    /// least `coverage` of the minutes (the packing argument behind Table 2).
    pub fn packable_ags(&self, nsm_rps: f64, max_utilisation: f64, coverage: f64) -> usize {
        let budget = nsm_rps * max_utilisation;
        let mut packed: Vec<usize> = Vec::new();
        for g in 0..self.gateways() {
            let mut candidate = packed.clone();
            candidate.push(g);
            let ok_minutes = (0..self.minutes())
                .filter(|&m| self.aggregate_at(&candidate, m) <= budget)
                .count();
            if ok_minutes as f64 >= coverage * self.minutes() as f64 {
                packed = candidate;
            }
        }
        packed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_for_a_seed() {
        let cfg = AgTraceConfig::default();
        let a = AgTrace::generate(&cfg);
        let b = AgTrace::generate(&cfg);
        assert_eq!(a.rates, b.rates);
        assert_eq!(a.gateways(), cfg.gateways);
        assert_eq!(a.minutes(), cfg.minutes);
    }

    #[test]
    fn utilisation_is_low_but_bursty() {
        let trace = AgTrace::generate(&AgTraceConfig::default());
        for g in 0..trace.gateways() {
            let mean = trace.mean_of(g);
            let peak = trace.peak_of(g);
            assert!(
                mean < 0.55 * trace.peak_rps,
                "gateway {g} mean {mean} too high"
            );
            assert!(
                peak > 1.5 * mean,
                "gateway {g} is not bursty (peak {peak}, mean {mean})"
            );
        }
    }

    #[test]
    fn aggregate_peak_is_below_sum_of_peaks() {
        // Statistical multiplexing: bursts of different AGs do not align, so
        // the aggregate needs far less capacity than the sum of per-AG peaks.
        let trace = AgTrace::generate(&AgTraceConfig::default());
        let all: Vec<usize> = (0..trace.gateways()).collect();
        let sum_of_peaks: f64 = all.iter().map(|&g| trace.peak_of(g)).sum();
        let aggregate_peak = trace.aggregate_peak(&all);
        assert!(
            aggregate_peak < 0.7 * sum_of_peaks,
            "aggregate {aggregate_peak} vs sum of peaks {sum_of_peaks}"
        );
    }

    #[test]
    fn packing_fits_more_ags_than_peak_provisioning() {
        let trace = AgTrace::generate(&AgTraceConfig::default());
        // An NSM provisioned for 4 AGs' worth of peak capacity can host more
        // than 4 AGs of real traffic even under a strict 60%-utilisation /
        // 97%-of-minutes constraint.
        let packable = trace.packable_ags(4.0 * trace.peak_rps, 0.6, 0.97);
        assert!(packable > 4, "only {packable} AGs packed");
        // Relaxing the headroom constraint packs considerably more.
        let relaxed = trace.packable_ags(4.0 * trace.peak_rps, 0.9, 0.97);
        assert!(relaxed > packable, "relaxed {relaxed} vs strict {packable}");
    }

    #[test]
    fn top_utilised_is_sorted() {
        let trace = AgTrace::generate(&AgTraceConfig::default());
        let top = trace.top_utilised(3);
        assert_eq!(top.len(), 3);
        assert!(trace.mean_of(top[0]) >= trace.mean_of(top[1]));
        assert!(trace.mean_of(top[1]) >= trace.mean_of(top[2]));
    }
}
