//! Bursty multi-tenant scenario driving the operator control plane.
//!
//! Where [`crate::scenario`] exercises the *fault* machinery with a single
//! client, this runner exercises the *control* machinery with several: each
//! tenant VM streams a seeded, byte-verified payload to a remote echo
//! server, but tenants start at different virtual times, so offered load
//! ramps up as they join and back down as they finish. Clients open a fresh
//! connection every few chunks (short-connection behaviour), which is what
//! lets a control-plane migration actually shift load: new connections
//! follow the VM's current NSM mapping while established ones stay pinned.
//!
//! The runner checks the same invariants as the fault scenario — byte
//! integrity of every echoed chunk, NQE conservation per VM, scheduler
//! accounting — and reports the full [`ControlEvent`] log plus the final
//! core allocation so tests can assert that scale-up, rebalancing and
//! scale-down really fired.

use nk_host::sched::SchedStats;
use nk_host::{ControlTelemetry, NetKernelHost};
use nk_types::{
    ControlEvent, HostConfig, NkError, NkResult, NsmId, SockAddr, SocketApi, SocketId, VmId,
};
use std::collections::BTreeMap;

use crate::scenario::seeded_payload;

/// One tenant's offered load.
#[derive(Clone, Debug)]
pub struct BurstyClient {
    /// The VM the client runs in.
    pub vm: VmId,
    /// Virtual time at which the tenant starts transferring.
    pub start_ns: u64,
    /// Bytes the tenant must deliver (and see echoed) end to end.
    pub total_bytes: usize,
    /// Stop-and-wait chunk size.
    pub chunk: usize,
    /// Chunks transferred per connection before the client opens a fresh
    /// one (short-connection behaviour; live migration moves these).
    pub chunks_per_conn: usize,
}

impl BurstyClient {
    /// A 64 KiB transfer starting at `start_ns`, reconnecting every four
    /// chunks.
    pub fn new(vm: VmId, start_ns: u64) -> Self {
        BurstyClient {
            vm,
            start_ns,
            total_bytes: 64 * 1024,
            chunk: 2048,
            chunks_per_conn: 4,
        }
    }

    /// Set the transfer size (builder style).
    pub fn with_total_bytes(mut self, bytes: usize) -> Self {
        self.total_bytes = bytes;
        self
    }
}

/// Configuration of one bursty multi-tenant run.
#[derive(Clone, Debug)]
pub struct BurstyConfig {
    /// The host under test (usually with a control policy installed).
    pub host: HostConfig,
    /// Seed for the transferred payloads (each client derives its own).
    pub seed: u64,
    /// Fabric address of the remote echo server.
    pub server_ip: u32,
    /// Port of the remote echo server.
    pub server_port: u16,
    /// The tenants and their activity windows.
    pub clients: Vec<BurstyClient>,
    /// Step budget (livelock guard).
    pub max_steps: usize,
    /// Steps to keep running after every tenant finished, so the control
    /// plane observes the ramp-down and can scale back.
    pub drain_steps: usize,
    /// Virtual time per step in nanoseconds.
    pub dt_ns: u64,
}

impl BurstyConfig {
    /// A run over `host` with defaults matching the fault scenario's pacing.
    pub fn new(host: HostConfig) -> Self {
        BurstyConfig {
            host,
            seed: 1,
            server_ip: 0x0A00_0500,
            server_port: 7,
            clients: Vec::new(),
            max_steps: 40_000,
            drain_steps: 200,
            dt_ns: 100_000,
        }
    }

    /// Add a tenant (builder style).
    pub fn with_client(mut self, client: BurstyClient) -> Self {
        self.clients.push(client);
        self
    }

    /// Set the payload seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Everything a finished bursty run reports. Two runs of the same
/// configuration must produce equal reports (the determinism guarantee).
#[derive(Clone, Debug, PartialEq)]
pub struct BurstyReport {
    /// True when every tenant delivered and verified all its bytes.
    pub completed: bool,
    /// Host steps executed.
    pub steps: u64,
    /// Bytes echoed back and verified, summed over tenants.
    pub bytes_verified: u64,
    /// Socket errors observed across tenants.
    pub errors_observed: u64,
    /// Reconnects forced by errors (scheduled short-connection reopens are
    /// not counted).
    pub reconnects: u64,
    /// The complete control-plane decision log.
    pub control: Vec<ControlEvent>,
    /// Per-epoch control observability: utilisation samples and action
    /// counts as time series (empty without a control plane).
    pub telemetry: ControlTelemetry,
    /// Core allocation per NSM at the end of the run.
    pub final_nsm_cores: BTreeMap<NsmId, usize>,
    /// Cores allocated to CoreEngine at the end of the run.
    pub final_engine_cores: usize,
    /// NSM serving each tenant's new connections at the end of the run.
    pub final_mapping: BTreeMap<VmId, NsmId>,
    /// CoreEngine statistics.
    pub engine: nk_engine::EngineStats,
    /// Scheduler statistics.
    pub sched: SchedStats,
}

/// Per-client transfer state (the same stop-and-wait machine as the fault
/// scenario, plus scheduled reconnects).
struct ClientState {
    spec: BurstyClient,
    payload: Vec<u8>,
    sock: Option<SocketId>,
    established: bool,
    off: usize,
    sent_in_chunk: usize,
    acked_in_chunk: usize,
    chunks_on_conn: usize,
    errors_observed: u64,
    reconnects: u64,
}

impl ClientState {
    fn done(&self) -> bool {
        self.off >= self.spec.total_bytes
    }
}

/// A runnable bursty scenario (see the module docs).
pub struct BurstyScenario {
    cfg: BurstyConfig,
}

impl BurstyScenario {
    /// Build a scenario from its configuration.
    pub fn new(cfg: BurstyConfig) -> Self {
        BurstyScenario { cfg }
    }

    /// Run to completion (or the step budget) and report.
    ///
    /// Panics with a descriptive message when an invariant is violated —
    /// byte corruption, NQE loss, scheduler accounting drift.
    pub fn run(&self) -> NkResult<BurstyReport> {
        let cfg = &self.cfg;
        let mut host = NetKernelHost::new(cfg.host.clone())?;

        let remote = host.add_remote(cfg.server_ip);
        let listener = remote.socket();
        remote.bind(listener, SockAddr::new(0, cfg.server_port))?;
        remote.listen(listener, 64)?;
        let mut server_conns: Vec<SocketId> = Vec::new();
        let mut echo_buf = vec![0u8; 16 * 1024];

        let mut clients: Vec<ClientState> = cfg
            .clients
            .iter()
            .map(|spec| ClientState {
                payload: seeded_payload(
                    cfg.seed ^ (spec.vm.raw() as u64).wrapping_mul(0x9E37_79B9),
                    spec.total_bytes,
                ),
                spec: spec.clone(),
                sock: None,
                established: false,
                off: 0,
                sent_in_chunk: 0,
                acked_in_chunk: 0,
                chunks_on_conn: 0,
                errors_observed: 0,
                reconnects: 0,
            })
            .collect();

        let mut steps = 0u64;
        let mut drained = 0usize;
        while (steps as usize) < cfg.max_steps {
            let all_done = clients.iter().all(ClientState::done);
            if all_done {
                if drained >= cfg.drain_steps {
                    break;
                }
                drained += 1;
            }
            let now = host.now_ns();
            let server = SockAddr::new(cfg.server_ip, cfg.server_port);
            for c in clients.iter_mut() {
                if now >= c.spec.start_ns && !c.done() {
                    Self::drive_client(&mut host, c, server);
                }
            }
            host.step(cfg.dt_ns);
            Self::drive_server(
                &mut host,
                cfg.server_ip,
                listener,
                &mut server_conns,
                &mut echo_buf,
            );
            steps += 1;
            if steps.is_multiple_of(64) {
                Self::check_sched(&host);
            }
        }
        let completed = clients.iter().all(ClientState::done);

        // Settle and check conservation per tenant at quiescence.
        for c in clients.iter_mut() {
            if let Some(s) = c.sock.take() {
                if let Some(g) = host.guest_mut(c.spec.vm) {
                    let _ = g.close(s);
                }
            }
        }
        for _ in 0..50 {
            host.step(cfg.dt_ns);
        }
        Self::check_sched(&host);
        for c in &clients {
            Self::check_conservation(&mut host, c.spec.vm);
        }

        let final_nsm_cores = cfg
            .host
            .nsms
            .iter()
            .filter_map(|n| host.nsm_cores(n.id).map(|c| (n.id, c)))
            .collect();
        let final_mapping = cfg
            .host
            .vms
            .iter()
            .filter_map(|v| host.nsm_of(v.id).map(|n| (v.id, n)))
            .collect();
        Ok(BurstyReport {
            completed,
            steps,
            bytes_verified: clients.iter().map(|c| c.off as u64).sum(),
            errors_observed: clients.iter().map(|c| c.errors_observed).sum(),
            reconnects: clients.iter().map(|c| c.reconnects).sum(),
            control: host.control_events().to_vec(),
            telemetry: host.control_telemetry().clone(),
            final_nsm_cores,
            final_engine_cores: host.engine_cores(),
            final_mapping,
            engine: host.engine_stats(),
            sched: host.sched_stats(),
        })
    }

    /// One client iteration: (re)connect if needed, push the current chunk,
    /// verify echoed bytes, rotate the connection every few chunks.
    fn drive_client(host: &mut NetKernelHost, c: &mut ClientState, server: SockAddr) {
        let chunk_len = c.spec.chunk.min(c.spec.total_bytes - c.off);
        let Some(g) = host.guest_mut(c.spec.vm) else {
            return;
        };
        let Some(sock) = c.sock else {
            if let Ok(s) = g.socket() {
                if g.connect(s, server).is_ok() {
                    c.sock = Some(s);
                    c.established = false;
                    c.sent_in_chunk = 0;
                    c.acked_in_chunk = 0;
                    c.chunks_on_conn = 0;
                } else {
                    let _ = g.close(s);
                }
            }
            return;
        };

        let ev = g.poll(sock);
        if ev.error() || ev.hup() {
            c.errors_observed += 1;
            c.reconnects += 1;
            let _ = g.close(sock);
            c.sock = None;
            c.established = false;
            return;
        }
        if !c.established {
            if ev.writable() {
                c.established = true;
            } else {
                return;
            }
        }
        if c.sent_in_chunk < chunk_len {
            let from = c.off + c.sent_in_chunk;
            let to = c.off + chunk_len;
            match g.send(sock, &c.payload[from..to]) {
                Ok(n) => c.sent_in_chunk += n,
                Err(NkError::WouldBlock) => {}
                Err(_) => return,
            }
        }
        let mut buf = [0u8; 4096];
        loop {
            match g.recv(sock, &mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    let at = c.off + c.acked_in_chunk;
                    assert!(
                        at + n <= c.off + chunk_len,
                        "{:?}: server echoed past the outstanding chunk",
                        c.spec.vm,
                    );
                    assert_eq!(
                        &buf[..n],
                        &c.payload[at..at + n],
                        "{:?}: echoed bytes diverge from the payload at offset {at}",
                        c.spec.vm,
                    );
                    c.acked_in_chunk += n;
                }
                Err(_) => break,
            }
        }
        if c.acked_in_chunk == chunk_len && chunk_len > 0 {
            c.off += chunk_len;
            c.sent_in_chunk = 0;
            c.acked_in_chunk = 0;
            c.chunks_on_conn += 1;
            // Short-connection behaviour: rotate to a fresh connection so a
            // live migration can take effect mid-transfer.
            if c.spec.chunks_per_conn > 0 && c.chunks_on_conn >= c.spec.chunks_per_conn {
                let _ = g.close(sock);
                c.sock = None;
                c.established = false;
            }
        }
    }

    /// Accept and echo on the remote server.
    fn drive_server(
        host: &mut NetKernelHost,
        server_ip: u32,
        listener: SocketId,
        conns: &mut Vec<SocketId>,
        buf: &mut [u8],
    ) {
        let Some(remote) = host.remote_mut(server_ip) else {
            return;
        };
        while let Ok((conn, _)) = remote.accept(listener) {
            conns.push(conn);
        }
        conns.retain(|&conn| loop {
            match remote.recv(conn, buf) {
                Ok(0) => {
                    let _ = remote.close(conn);
                    break false;
                }
                Ok(n) => {
                    let _ = remote.send(conn, &buf[..n]);
                }
                Err(NkError::WouldBlock) => break true,
                Err(_) => {
                    let _ = remote.close(conn);
                    break false;
                }
            }
        });
    }

    /// Scheduler accounting: every step ends in quiescence or at the bound.
    fn check_sched(host: &NetKernelHost) {
        let s = host.sched_stats();
        assert_eq!(
            s.quiescent_exits + s.round_limit_hits,
            s.steps,
            "scheduler steps unaccounted for: {s:?}",
        );
    }

    /// NQE conservation over CoreEngine at quiescence, per tenant.
    fn check_conservation(host: &mut NetKernelHost, vm: VmId) {
        let guest = host.guest_mut(vm).expect("client VM exists").stats();
        let stats = host.vm_switch_stats(vm).expect("client VM registered");
        let stalled = host.stalled_nqes() as u64;
        assert!(
            guest.nqes_sent <= stats.nqes_forwarded + stats.dropped + stalled,
            "{vm:?}: NQEs lost in the switch: sent {}, forwarded {}, dropped {}, stalled {}",
            guest.nqes_sent,
            stats.nqes_forwarded,
            stats.dropped,
            stalled,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nk_types::{NsmConfig, VmConfig, VmToNsmPolicy};

    /// Without a control policy the bursty runner is just a multi-tenant
    /// transfer: everything completes, byte-verified, no control events.
    #[test]
    fn multi_tenant_transfer_completes_without_control() {
        let host = HostConfig::new()
            .with_vm(VmConfig::new(VmId(1)))
            .with_vm(VmConfig::new(VmId(2)))
            .with_nsm(NsmConfig::kernel(NsmId(1)).with_vcpus(2))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)));
        let report = BurstyScenario::new(
            BurstyConfig::new(host)
                .with_client(BurstyClient::new(VmId(1), 0).with_total_bytes(16 * 1024))
                .with_client(BurstyClient::new(VmId(2), 1_000_000).with_total_bytes(16 * 1024)),
        )
        .run()
        .unwrap();
        assert!(report.completed, "{report:?}");
        assert_eq!(report.bytes_verified, 32 * 1024);
        assert!(report.control.is_empty());
        assert_eq!(report.errors_observed, 0);
    }

    #[test]
    fn clients_idle_before_their_start_time() {
        let host = HostConfig::new()
            .with_vm(VmConfig::new(VmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)));
        let late_start = 3_000_000;
        let report = BurstyScenario::new(
            BurstyConfig::new(host)
                .with_client(BurstyClient::new(VmId(1), late_start).with_total_bytes(8 * 1024)),
        )
        .run()
        .unwrap();
        assert!(report.completed);
        // The transfer could not have finished before it started.
        assert!(report.steps > late_start / 100_000);
    }
}
