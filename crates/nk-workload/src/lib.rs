//! Workload generators used by the evaluation.
//!
//! * [`agtrace`] — a synthetic application-gateway (AG) traffic trace
//!   generator standing in for the proprietary cloud trace of §6.1: tens of
//!   gateways whose per-minute request rates are bursty and whose average
//!   utilisation is far below their provisioned peak — the property the
//!   multiplexing use case exploits;
//! * [`apps`] — application state machines written against the
//!   [`nk_types::SocketApi`] trait: an epoll echo/HTTP-style server and a
//!   closed-loop `ab`-style client, usable unmodified on both the NetKernel
//!   GuestLib and the baseline in-guest stack (the property use case 3 relies
//!   on);
//! * [`scenario`] — the deterministic scenario runner composing a host, a
//!   verified reliable-transfer workload and a fault plan (NSM crashes, live
//!   migration, link degradation) with invariant checks, plus the seeded
//!   random fault-schedule generator the property tests draw from;
//! * [`bursty`] — the multi-tenant ramp-up/ramp-down runner driving the
//!   operator control plane: tenants join and leave over virtual time, every
//!   byte is verified, and the control-plane decision log (scale-up,
//!   rebalancing, scale-down) is part of the report;
//! * [`cluster`] — the cross-host scenario runner: tenants span the hosts of
//!   a [`nk_cluster::Cluster`], every byte crosses the inter-host fabric,
//!   and scripted or placer-driven migrations drain byte-verified.

pub mod agtrace;
pub mod apps;
pub mod bursty;
pub mod cluster;
pub mod scenario;

pub use agtrace::{AgTrace, AgTraceConfig};
pub use apps::{ClosedLoopClient, EchoServer};
pub use bursty::{BurstyClient, BurstyConfig, BurstyReport, BurstyScenario};
pub use cluster::{
    ClusterScenario, ClusterScenarioConfig, ClusterScenarioReport, ClusterTenant,
    PlannedEvacuation, PlannedMigration,
};
pub use scenario::{random_fault_plan, seeded_payload, Scenario, ScenarioConfig, ScenarioReport};
