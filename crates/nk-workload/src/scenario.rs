//! Scenario runner: applications + fault plans + invariant checks.
//!
//! A [`Scenario`] composes a [`NetKernelHost`], a guest-side reliable
//! transfer client, a remote echo server and a [`FaultPlan`] into one
//! deterministic execution: the client streams a seeded payload to the
//! server chunk by chunk, verifying every echoed byte, and transparently
//! reconnects whenever the infrastructure fails underneath it (NSM crash,
//! live migration, link degradation). Because the payload, the fault
//! schedule and the whole datapath derive from explicit seeds, a scenario
//! replays bit-for-bit — the property the seeded fault tests and the
//! determinism test build on.
//!
//! Invariants checked by every run:
//!
//! * **No NQE lost** — every request NQE the guest submitted was forwarded
//!   to an NSM, answered with an error, or is still queued for retry
//!   (conservation over the CoreEngine switch).
//! * **Scheduler accounting** — every step ends in quiescence or at the
//!   round bound, never in between.
//! * **Byte integrity** — every byte the server echoes must match the
//!   seeded payload at the connection's position; completion means all
//!   bytes were delivered and verified despite crashes mid-transfer.

use nk_fabric::rng::SplitMix64;
use nk_host::faults::FaultStats;
use nk_host::sched::SchedStats;
use nk_host::NetKernelHost;
use nk_netstack::stack::StackStats;
use nk_types::faults::{FaultAction, FaultPlan, LinkFault};
use nk_types::{HostConfig, NkError, NkResult, SockAddr, SocketApi, SocketId, VmId};

/// Configuration of one scenario run.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// The host under test.
    pub host: HostConfig,
    /// Timed infrastructure faults applied during the run.
    pub faults: FaultPlan,
    /// Seed for the transferred payload.
    pub seed: u64,
    /// The VM running the client application.
    pub client_vm: VmId,
    /// Fabric address of the remote echo server.
    pub server_ip: u32,
    /// Port of the remote echo server.
    pub server_port: u16,
    /// Bytes the client must deliver (and see echoed) end to end.
    pub total_bytes: usize,
    /// Stop-and-wait chunk size.
    pub chunk: usize,
    /// Step budget: the run fails if the transfer has not completed by then
    /// (livelock guard; each step is itself bounded by `max_poll_rounds`).
    pub max_steps: usize,
    /// Virtual time per step in nanoseconds.
    pub dt_ns: u64,
}

impl ScenarioConfig {
    /// A scenario over `host` with a 64 KiB transfer and defaults sized so
    /// the transfer spans many steps (room for faults to land mid-flight).
    pub fn new(host: HostConfig) -> Self {
        ScenarioConfig {
            host,
            faults: FaultPlan::new(),
            seed: 1,
            client_vm: VmId(1),
            server_ip: 0x0A00_0500,
            server_port: 7,
            total_bytes: 64 * 1024,
            chunk: 2048,
            max_steps: 20_000,
            dt_ns: 100_000,
        }
    }

    /// Install a fault plan (builder style).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Set the payload seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the transfer size (builder style).
    pub fn with_total_bytes(mut self, bytes: usize) -> Self {
        self.total_bytes = bytes;
        self
    }
}

/// Everything a finished scenario reports. Two runs of the same
/// configuration must produce equal reports (the determinism guarantee).
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioReport {
    /// True when all bytes were delivered, echoed and verified.
    pub completed: bool,
    /// Host steps executed.
    pub steps: u64,
    /// Bytes echoed back and verified against the seeded payload.
    pub bytes_verified: u64,
    /// Socket errors the client observed (resets, refused NSMs).
    pub errors_observed: u64,
    /// Times the client had to reconnect through a replacement NSM.
    pub reconnects: u64,
    /// Guest-side NQE statistics.
    pub guest: nk_guest::GuestStats,
    /// CoreEngine statistics.
    pub engine: nk_engine::EngineStats,
    /// Per-VM switching statistics of the client VM.
    pub vm: nk_engine::VmSwitchStats,
    /// Scheduler statistics.
    pub sched: SchedStats,
    /// Fault-injection statistics.
    pub faults: FaultStats,
    /// The remote echo server's stack statistics.
    pub server_stack: StackStats,
}

/// Generate the seeded payload a scenario transfers.
pub fn seeded_payload(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        out.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Generate a recoverable random fault schedule from a seed.
///
/// Incidents are drawn from: crash-the-serving-NSM (with an immediate live
/// migration to a standby and a later restart of the crashed one), plain
/// live migration, and link degradation followed by restoration. The
/// generator tracks which NSM serves the VM and spaces incidents so every
/// crashed NSM is restarted before the next incident, keeping the plan valid
/// and the scenario completable. `horizon_ns` bounds when incidents start.
pub fn random_fault_plan(
    seed: u64,
    cfg: &HostConfig,
    vm: VmId,
    horizon_ns: u64,
) -> NkResult<FaultPlan> {
    let nsm_ids: Vec<_> = cfg.nsms.iter().map(|n| n.id).collect();
    if nsm_ids.len() < 2 {
        return Err(NkError::BadConfig);
    }
    let mut rng = SplitMix64::new(seed ^ 0xFA17_FA17);
    let mut current = cfg.nsm_for_vm(vm)?;
    let mut plan = FaultPlan::new();
    let slot = (horizon_ns / 8).max(1);
    let mut t = slot + rng.next_below(slot);
    while t < horizon_ns {
        match rng.next_below(3) {
            0 => {
                // Degrade the serving NSM's link, restore it half a slot on.
                let link = LinkFault::default()
                    .with_loss(rng.next_f64() * 0.02)
                    .with_latency_us(rng.next_below(150))
                    .with_reorder(rng.next_f64() * 0.05);
                plan = plan
                    .at(t, FaultAction::DegradeLink { nsm: current, link })
                    .at(
                        t + slot / 2,
                        FaultAction::DegradeLink {
                            nsm: current,
                            link: LinkFault::healthy(),
                        },
                    );
            }
            1 => {
                // Crash the serving NSM, migrate the VM to a standby in the
                // same instant, restart the crashed NSM half a slot later —
                // well before the next incident can touch it again.
                let standby = nsm_ids[(nsm_ids.iter().position(|n| *n == current).unwrap()
                    + 1
                    + rng.next_below(nsm_ids.len() as u64 - 1) as usize)
                    % nsm_ids.len()];
                plan = plan
                    .at(t, FaultAction::CrashNsm(current))
                    .at(t, FaultAction::MigrateVm { vm, to: standby })
                    .at(t + slot / 2, FaultAction::RestartNsm(current));
                current = standby;
            }
            _ => {
                // Plain live migration, no failure involved.
                let target = nsm_ids[rng.next_below(nsm_ids.len() as u64) as usize];
                if target != current {
                    plan = plan.at(t, FaultAction::MigrateVm { vm, to: target });
                    current = target;
                }
            }
        }
        t += slot + rng.next_below(slot);
    }
    plan.validate(cfg)?;
    Ok(plan)
}

/// State of the client's reliable stop-and-wait transfer.
struct Client {
    sock: Option<SocketId>,
    established: bool,
    /// Bytes fully delivered, echoed and verified.
    off: usize,
    /// Bytes of the current chunk handed to `send` on this connection.
    sent_in_chunk: usize,
    /// Bytes of the current chunk echoed back and verified.
    acked_in_chunk: usize,
    errors_observed: u64,
    reconnects: u64,
}

/// A runnable scenario (see the module docs).
pub struct Scenario {
    cfg: ScenarioConfig,
    payload: Vec<u8>,
}

impl Scenario {
    /// Build a scenario from its configuration.
    pub fn new(cfg: ScenarioConfig) -> Self {
        let payload = seeded_payload(cfg.seed, cfg.total_bytes);
        Scenario { cfg, payload }
    }

    /// Run to completion (or the step budget) and report.
    ///
    /// Panics with a descriptive message when an invariant is violated —
    /// byte corruption, NQE loss, scheduler accounting drift.
    pub fn run(&self) -> NkResult<ScenarioReport> {
        let cfg = &self.cfg;
        let mut host = NetKernelHost::new(cfg.host.clone())?;
        host.install_fault_plan(&cfg.faults)?;

        // Remote echo server.
        let remote = host.add_remote(cfg.server_ip);
        let listener = remote.socket();
        remote.bind(listener, SockAddr::new(0, cfg.server_port))?;
        remote.listen(listener, 64)?;
        let mut server_conns: Vec<SocketId> = Vec::new();

        let mut client = Client {
            sock: None,
            established: false,
            off: 0,
            sent_in_chunk: 0,
            acked_in_chunk: 0,
            errors_observed: 0,
            reconnects: 0,
        };
        let mut steps = 0u64;
        let mut echo_buf = vec![0u8; 16 * 1024];

        while client.off < cfg.total_bytes && (steps as usize) < cfg.max_steps {
            self.drive_client(&mut host, &mut client);
            host.step(cfg.dt_ns);
            Self::drive_server(
                &mut host,
                cfg.server_ip,
                listener,
                &mut server_conns,
                &mut echo_buf,
            );
            steps += 1;
            if steps.is_multiple_of(64) {
                Self::check_sched(&host);
            }
        }
        let completed = client.off >= cfg.total_bytes;

        // Settle: let in-flight NQEs, credits and closes drain so the
        // conservation invariant can be checked at quiescence.
        if let Some(s) = client.sock.take() {
            let g = host.guest_mut(cfg.client_vm).ok_or(NkError::NotFound)?;
            let _ = g.close(s);
        }
        for _ in 0..50 {
            host.step(cfg.dt_ns);
        }
        Self::check_sched(&host);
        self.check_conservation(&mut host, &client);

        let guest = host
            .guest_mut(cfg.client_vm)
            .ok_or(NkError::NotFound)?
            .stats();
        let vm = host
            .vm_switch_stats(cfg.client_vm)
            .ok_or(NkError::NotFound)?;
        let server_stack = host
            .remote_mut(cfg.server_ip)
            .ok_or(NkError::NotFound)?
            .stats();
        Ok(ScenarioReport {
            completed,
            steps,
            bytes_verified: client.off as u64,
            errors_observed: client.errors_observed,
            reconnects: client.reconnects,
            guest,
            engine: host.engine_stats(),
            vm,
            sched: host.sched_stats(),
            faults: host.fault_stats(),
            server_stack,
        })
    }

    /// One client iteration: reconnect if needed, push the current chunk,
    /// verify echoed bytes.
    fn drive_client(&self, host: &mut NetKernelHost, c: &mut Client) {
        let cfg = &self.cfg;
        let chunk_len = cfg.chunk.min(cfg.total_bytes - c.off);
        let Some(g) = host.guest_mut(cfg.client_vm) else {
            return;
        };
        let Some(sock) = c.sock else {
            // (Re)open: a fresh socket and an async connect. A chunk is
            // always retransmitted from its start on a new connection.
            if let Ok(s) = g.socket() {
                if g.connect(s, SockAddr::new(cfg.server_ip, cfg.server_port))
                    .is_ok()
                {
                    c.sock = Some(s);
                    c.established = false;
                    c.sent_in_chunk = 0;
                    c.acked_in_chunk = 0;
                } else {
                    let _ = g.close(s);
                }
            }
            return;
        };

        let ev = g.poll(sock);
        if ev.error() || ev.hup() {
            // The infrastructure failed underneath the socket (NSM crash →
            // ConnReset, dead mapping → NsmUnavailable). Drop the connection
            // and retry the whole chunk through whatever NSM now serves us.
            c.errors_observed += 1;
            c.reconnects += 1;
            let _ = g.close(sock);
            c.sock = None;
            c.established = false;
            return;
        }
        if !c.established {
            if ev.writable() {
                c.established = true;
            } else {
                return; // handshake still in flight
            }
        }
        // Push the rest of the current chunk (partial sends are fine: the
        // send budget throttles us under backpressure).
        if c.sent_in_chunk < chunk_len {
            let from = c.off + c.sent_in_chunk;
            let to = c.off + chunk_len;
            match g.send(sock, &self.payload[from..to]) {
                Ok(n) => c.sent_in_chunk += n,
                Err(NkError::WouldBlock) => {}
                Err(_) => return, // surfaced via poll() next iteration
            }
        }
        // Verify whatever the server has echoed so far.
        let mut buf = [0u8; 4096];
        loop {
            match g.recv(sock, &mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    let at = c.off + c.acked_in_chunk;
                    assert!(
                        at + n <= c.off + chunk_len,
                        "server echoed {} bytes past the outstanding chunk",
                        at + n - (c.off + chunk_len),
                    );
                    assert_eq!(
                        &buf[..n],
                        &self.payload[at..at + n],
                        "echoed bytes diverge from the payload at offset {at}",
                    );
                    c.acked_in_chunk += n;
                }
                Err(_) => break,
            }
        }
        if c.acked_in_chunk == chunk_len && chunk_len > 0 {
            // Chunk fully delivered and verified: advance on the same
            // connection.
            c.off += chunk_len;
            c.sent_in_chunk = 0;
            c.acked_in_chunk = 0;
        }
    }

    /// Accept and echo on the remote server.
    fn drive_server(
        host: &mut NetKernelHost,
        server_ip: u32,
        listener: SocketId,
        conns: &mut Vec<SocketId>,
        buf: &mut [u8],
    ) {
        let Some(remote) = host.remote_mut(server_ip) else {
            return;
        };
        while let Ok((conn, _)) = remote.accept(listener) {
            conns.push(conn);
        }
        conns.retain(|&conn| loop {
            match remote.recv(conn, buf) {
                Ok(0) => {
                    let _ = remote.close(conn);
                    break false;
                }
                Ok(n) => {
                    let _ = remote.send(conn, &buf[..n]);
                }
                Err(NkError::WouldBlock) => break true,
                Err(_) => {
                    let _ = remote.close(conn);
                    break false;
                }
            }
        });
    }

    /// Scheduler accounting: every step ends in quiescence or at the bound.
    fn check_sched(host: &NetKernelHost) {
        let s = host.sched_stats();
        assert_eq!(
            s.quiescent_exits + s.round_limit_hits,
            s.steps,
            "scheduler steps unaccounted for: {s:?}",
        );
    }

    /// NQE conservation over CoreEngine at quiescence: everything the guest
    /// submitted was forwarded, answered with an error, or is still parked
    /// for retry. Nothing vanishes.
    fn check_conservation(&self, host: &mut NetKernelHost, _c: &Client) {
        let guest = host
            .guest_mut(self.cfg.client_vm)
            .expect("client VM exists")
            .stats();
        let vm = host
            .vm_switch_stats(self.cfg.client_vm)
            .expect("client VM registered");
        let stalled = host.stalled_nqes() as u64;
        assert_eq!(
            guest.nqes_sent,
            vm.nqes_forwarded + vm.dropped + stalled,
            "NQEs lost in the switch: guest sent {}, forwarded {}, dropped {}, stalled {}",
            guest.nqes_sent,
            vm.nqes_forwarded,
            vm.dropped,
            stalled,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nk_types::{NsmConfig, NsmId, VmConfig, VmToNsmPolicy};

    fn two_nsm_host() -> HostConfig {
        HostConfig::new()
            .with_vm(VmConfig::new(VmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(2)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)))
    }

    #[test]
    fn seeded_payload_is_deterministic_and_sized() {
        assert_eq!(seeded_payload(9, 1000), seeded_payload(9, 1000));
        assert_ne!(seeded_payload(9, 1000), seeded_payload(10, 1000));
        assert_eq!(seeded_payload(9, 1000).len(), 1000);
    }

    #[test]
    fn fault_free_scenario_completes() {
        let report = Scenario::new(ScenarioConfig::new(two_nsm_host()).with_total_bytes(16 * 1024))
            .run()
            .unwrap();
        assert!(report.completed, "{report:?}");
        assert_eq!(report.bytes_verified, 16 * 1024);
        assert_eq!(report.errors_observed, 0);
        assert_eq!(report.reconnects, 0);
        assert!(report.server_stack.bytes_in >= 16 * 1024);
    }

    #[test]
    fn random_plans_are_valid_and_seed_dependent() {
        let cfg = two_nsm_host();
        let a = random_fault_plan(3, &cfg, VmId(1), 10_000_000).unwrap();
        let b = random_fault_plan(3, &cfg, VmId(1), 10_000_000).unwrap();
        let c = random_fault_plan(4, &cfg, VmId(1), 10_000_000).unwrap();
        assert_eq!(a, b, "same seed must give the same plan");
        assert_ne!(a, c, "different seeds should differ");
        assert!(!a.is_empty());
        assert!(a.validate(&cfg).is_ok());
    }

    #[test]
    fn single_nsm_host_cannot_generate_failover_plans() {
        let cfg = HostConfig::new()
            .with_vm(VmConfig::new(VmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)));
        assert_eq!(
            random_fault_plan(1, &cfg, VmId(1), 1_000_000),
            Err(NkError::BadConfig)
        );
    }
}
