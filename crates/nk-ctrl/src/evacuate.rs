//! Planned, revertible host evacuation.
//!
//! Warm migration ([`nk_types::VmWarmExport`] and friends) moves *one* VM;
//! evacuating a whole host — many VMs across many NSM shares, under faults —
//! needs ordering, pacing and a partial-failure story. This module is the
//! *deciding* half of that story, in the same mechanism-free spirit as the
//! rest of `nk-ctrl`: an [`EvacPlan`] compiles a host evacuation into a DAG
//! of typed [`EvacAction`]s (freeze → export → reroute → install → thaw per
//! VM, scale-to-zero retirement of the emptied shares at the tail), every
//! action has a well-defined revert, and [`PlanRun`] tracks execution so a
//! mid-plan failure yields the exact list of completed actions to unwind —
//! in reverse completion order, back to a clean pre-plan state.
//!
//! The executor lives in `nk-cluster` (`Cluster::evacuate_host`), which owns
//! the hosts and the fabric; this module owns the *shape* of the operation:
//! which steps exist, what each depends on, how concurrency is paced
//! (`pace` VMs per wave), and the serializable [`PlanEvent`] log that makes
//! an evacuation as replayable as every other cluster decision.

use nk_types::{HostId, NkError, NkResult, NsmId, VmId};
use serde::{Deserialize, Serialize};

/// How a VM travels during an evacuation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvacMode {
    /// Freeze the VM, export live connection state, reroute its addresses
    /// and install on the destination — zero reconnects, zero drain wait.
    /// Requires the VM to be its source share's only tenant.
    Warm,
    /// Export identity only; pinned connections keep draining on the source
    /// until their count hits zero.
    Drained,
}

/// One typed action of an evacuation plan. Every variant has a revert the
/// executor applies when a later action fails (see `nk-cluster`):
/// freeze ↔ thaw, export ↔ re-import/cancel, reroute ↔ route restore,
/// install ↔ uninstall, thaw ↔ re-freeze + home restore, retire ↔ revive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvacAction {
    /// Open the warm-migration freeze window on the VM (warm chains only).
    Freeze {
        /// The VM to freeze.
        vm: VmId,
    },
    /// Export the VM off the evacuating host, warm or drained.
    Export {
        /// The VM to export.
        vm: VmId,
        /// Whether live connection state travels with it.
        mode: EvacMode,
    },
    /// Steer the VM's transplanted addresses to the destination trunk
    /// (warm chains only).
    Reroute {
        /// The VM whose addresses move.
        vm: VmId,
        /// The destination host.
        to: HostId,
    },
    /// Install the export on the destination host.
    Install {
        /// The VM to install.
        vm: VmId,
        /// The destination host.
        to: HostId,
    },
    /// Resume the VM on the destination: thaw (warm) or flip its home and
    /// begin the source-side drain (drained).
    Thaw {
        /// The VM to resume.
        vm: VmId,
        /// Its new home.
        to: HostId,
    },
    /// Scale an emptied source NSM share to zero cores (plan tail; a share
    /// that still serves connections simply declines, which is not a
    /// failure).
    RetireShare {
        /// The source share to retire.
        nsm: NsmId,
    },
}

/// One node of the compiled DAG: an action, the wave it is paced into, and
/// the step ids it depends on. Step ids equal execution order by
/// construction (`deps` only ever point backwards).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EvacStep {
    /// Position in the plan; doubles as the execution order.
    pub id: usize,
    /// Concurrency wave (VM chains are paced `pace` per wave; retirements
    /// run in a final wave of their own).
    pub wave: usize,
    /// The action.
    pub action: EvacAction,
    /// Step ids that must complete before this one may run.
    pub deps: Vec<usize>,
}

/// One VM's travel order, as the planner decided it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvacMove {
    /// The VM leaving the evacuating host.
    pub vm: VmId,
    /// Its destination host.
    pub to: HostId,
    /// Warm or drained.
    pub mode: EvacMode,
}

/// A compiled evacuation: the full action DAG for clearing one host.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EvacPlan {
    /// The host being evacuated.
    pub host: HostId,
    /// VM chains started per wave (the bounded concurrency knob).
    pub pace: usize,
    /// The moves the plan executes, in chain order.
    pub moves: Vec<EvacMove>,
    /// The compiled steps, in execution order (`steps[i].id == i`).
    pub steps: Vec<EvacStep>,
}

impl EvacPlan {
    /// Compile an evacuation of `host` into its step DAG.
    ///
    /// VM chains are partitioned into waves of `pace`; inside a wave the
    /// steps are laid out phase-major (all freezes, then all exports, …) so
    /// the executor can share one freeze window per wave, while the `deps`
    /// edges keep each VM's chain strictly ordered. `retire` shares are
    /// scaled to zero in a final wave depending on every chain's last step.
    ///
    /// Refuses (`BadConfig`) a zero pace, a move targeting the evacuating
    /// host itself, or a VM listed twice.
    pub fn compile(
        host: HostId,
        moves: &[EvacMove],
        retire: &[NsmId],
        pace: usize,
    ) -> NkResult<EvacPlan> {
        if pace == 0 {
            return Err(NkError::BadConfig);
        }
        let mut seen = std::collections::BTreeSet::new();
        for m in moves {
            if m.to == host || !seen.insert(m.vm) {
                return Err(NkError::BadConfig);
            }
        }
        let mut steps: Vec<EvacStep> = Vec::new();
        let mut last_of_chain: Vec<Option<usize>> = vec![None; moves.len()];
        let waves = moves.len().div_ceil(pace);
        for wave in 0..waves {
            let chains = wave * pace..((wave + 1) * pace).min(moves.len());
            for phase in 0..5usize {
                for chain in chains.clone() {
                    let m = &moves[chain];
                    let action = match (phase, m.mode) {
                        (0, EvacMode::Warm) => EvacAction::Freeze { vm: m.vm },
                        (1, _) => EvacAction::Export {
                            vm: m.vm,
                            mode: m.mode,
                        },
                        (2, EvacMode::Warm) => EvacAction::Reroute { vm: m.vm, to: m.to },
                        (3, _) => EvacAction::Install { vm: m.vm, to: m.to },
                        (4, _) => EvacAction::Thaw { vm: m.vm, to: m.to },
                        // Drained chains have no freeze window and no
                        // address reroute.
                        _ => continue,
                    };
                    let id = steps.len();
                    let deps = last_of_chain[chain].into_iter().collect();
                    steps.push(EvacStep {
                        id,
                        wave,
                        action,
                        deps,
                    });
                    last_of_chain[chain] = Some(id);
                }
            }
        }
        // Scale-to-zero tail: every retirement waits for every chain.
        let chain_tails: Vec<usize> = last_of_chain.iter().filter_map(|t| *t).collect();
        let mut retire_sorted: Vec<NsmId> = retire.to_vec();
        retire_sorted.sort();
        retire_sorted.dedup();
        for nsm in retire_sorted {
            let id = steps.len();
            steps.push(EvacStep {
                id,
                wave: waves,
                action: EvacAction::RetireShare { nsm },
                deps: chain_tails.clone(),
            });
        }
        Ok(EvacPlan {
            host,
            pace,
            moves: moves.to_vec(),
            steps,
        })
    }

    /// Waves in the plan (chain waves plus the retirement tail).
    pub fn waves(&self) -> usize {
        self.steps.last().map(|s| s.wave + 1).unwrap_or(0)
    }

    /// The VMs a wave moves warm (the freeze window the executor shares
    /// across the wave covers exactly these).
    pub fn warm_vms_of_wave(&self, wave: usize) -> Vec<VmId> {
        self.steps
            .iter()
            .filter(|s| s.wave == wave)
            .filter_map(|s| match s.action {
                EvacAction::Freeze { vm } => Some(vm),
                _ => None,
            })
            .collect()
    }
}

/// What happened to one plan step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepStatus {
    /// Not executed yet.
    Pending,
    /// Executed successfully.
    Done,
    /// Execution failed (the plan is rolling back).
    Failed,
    /// Executed, then unwound by the rollback.
    Reverted,
}

/// One entry of the serializable plan log.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PlanEventKind {
    /// The plan was admitted and execution begins.
    PlanStarted {
        /// The evacuating host.
        host: HostId,
        /// Total steps compiled.
        steps: u32,
        /// Total waves (including the retirement tail).
        waves: u32,
    },
    /// A step began executing.
    ActionStarted {
        /// The step id.
        step: u32,
    },
    /// A step completed.
    ActionDone {
        /// The step id.
        step: u32,
    },
    /// A step failed; rollback follows.
    ActionFailed {
        /// The step id.
        step: u32,
        /// [`NkError::code`] of the failure.
        code: u32,
    },
    /// A completed step was unwound.
    ActionReverted {
        /// The step id.
        step: u32,
    },
    /// Every step completed; the evacuation is final.
    PlanCommitted {
        /// The evacuated host.
        host: HostId,
    },
    /// The rollback finished; the cluster is back in its pre-plan state.
    PlanRolledBack {
        /// The host that kept its VMs.
        host: HostId,
        /// Steps unwound.
        reverted: u32,
    },
}

/// A [`PlanEventKind`] stamped with virtual time, placement epoch and a
/// per-plan sequence number. The log is coordinator-only (plans never run
/// concurrently with each other), so merging it into a cluster-wide control
/// view stays deterministic at any thread count.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlanEvent {
    /// Virtual time of the event.
    pub at_ns: u64,
    /// Placement epoch the event belongs to.
    pub epoch: u64,
    /// Position in this plan's log.
    pub seq: u32,
    /// What happened.
    pub kind: PlanEventKind,
}

/// Execution bookkeeping of one plan: per-step status, completion order and
/// the event log. The executor drives it: [`PlanRun::started`] /
/// [`PlanRun::done`] around each action, [`PlanRun::failed`] on the first
/// error — which returns the rollback worklist — then
/// [`PlanRun::reverted`] per unwound step and one of
/// [`PlanRun::committed`] / [`PlanRun::rolled_back`] to close the log.
#[derive(Clone, Debug)]
pub struct PlanRun {
    plan: EvacPlan,
    status: Vec<StepStatus>,
    /// Step ids in completion order (the rollback runs this backwards).
    completed: Vec<usize>,
    events: Vec<PlanEvent>,
    seq: u32,
}

impl PlanRun {
    /// Admit a compiled plan and log `PlanStarted`.
    pub fn new(plan: EvacPlan, at_ns: u64, epoch: u64) -> Self {
        let mut run = PlanRun {
            status: vec![StepStatus::Pending; plan.steps.len()],
            completed: Vec::new(),
            events: Vec::new(),
            seq: 0,
            plan,
        };
        let kind = PlanEventKind::PlanStarted {
            host: run.plan.host,
            steps: run.plan.steps.len() as u32,
            waves: run.plan.waves() as u32,
        };
        run.push(kind, at_ns, epoch);
        run
    }

    /// The plan under execution.
    pub fn plan(&self) -> &EvacPlan {
        &self.plan
    }

    /// A step's current status.
    pub fn status(&self, id: usize) -> StepStatus {
        self.status[id]
    }

    /// True when every dependency of `id` has completed — the DAG gate the
    /// executor checks before running a step.
    pub fn ready(&self, id: usize) -> bool {
        self.plan.steps[id]
            .deps
            .iter()
            .all(|d| self.status[*d] == StepStatus::Done)
    }

    /// Log that step `id` began executing.
    pub fn started(&mut self, id: usize, at_ns: u64, epoch: u64) {
        self.push(
            PlanEventKind::ActionStarted { step: id as u32 },
            at_ns,
            epoch,
        );
    }

    /// Mark step `id` complete.
    pub fn done(&mut self, id: usize, at_ns: u64, epoch: u64) {
        self.status[id] = StepStatus::Done;
        self.completed.push(id);
        self.push(PlanEventKind::ActionDone { step: id as u32 }, at_ns, epoch);
    }

    /// Mark step `id` failed and return the rollback worklist: every
    /// completed step, most recent first.
    pub fn failed(&mut self, id: usize, error: NkError, at_ns: u64, epoch: u64) -> Vec<usize> {
        self.status[id] = StepStatus::Failed;
        self.push(
            PlanEventKind::ActionFailed {
                step: id as u32,
                code: error.code(),
            },
            at_ns,
            epoch,
        );
        self.completed.iter().rev().copied().collect()
    }

    /// Mark a completed step unwound.
    pub fn reverted(&mut self, id: usize, at_ns: u64, epoch: u64) {
        self.status[id] = StepStatus::Reverted;
        self.push(
            PlanEventKind::ActionReverted { step: id as u32 },
            at_ns,
            epoch,
        );
    }

    /// Close the log: every step done, the evacuation is final.
    pub fn committed(&mut self, at_ns: u64, epoch: u64) {
        self.push(
            PlanEventKind::PlanCommitted {
                host: self.plan.host,
            },
            at_ns,
            epoch,
        );
    }

    /// Close the log after a rollback.
    pub fn rolled_back(&mut self, at_ns: u64, epoch: u64) {
        let reverted = self
            .status
            .iter()
            .filter(|s| **s == StepStatus::Reverted)
            .count() as u32;
        self.push(
            PlanEventKind::PlanRolledBack {
                host: self.plan.host,
                reverted,
            },
            at_ns,
            epoch,
        );
    }

    /// The plan event log so far.
    pub fn events(&self) -> &[PlanEvent] {
        &self.events
    }

    /// Consume the run, yielding its event log.
    pub fn into_events(self) -> Vec<PlanEvent> {
        self.events
    }

    fn push(&mut self, kind: PlanEventKind, at_ns: u64, epoch: u64) {
        self.events.push(PlanEvent {
            at_ns,
            epoch,
            seq: self.seq,
            kind,
        });
        self.seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warm(vm: u8, to: u8) -> EvacMove {
        EvacMove {
            vm: VmId(vm),
            to: HostId(to),
            mode: EvacMode::Warm,
        }
    }

    fn drained(vm: u8, to: u8) -> EvacMove {
        EvacMove {
            vm: VmId(vm),
            to: HostId(to),
            mode: EvacMode::Drained,
        }
    }

    /// One warm chain compiles to the five phases in order, each step
    /// depending on its predecessor, plus the retirement tail.
    #[test]
    fn single_warm_chain_compiles_in_phase_order() {
        let plan =
            EvacPlan::compile(HostId(1), &[warm(1, 2)], &[NsmId(1)], 4).expect("plan compiles");
        let actions: Vec<&EvacAction> = plan.steps.iter().map(|s| &s.action).collect();
        assert!(matches!(actions[0], EvacAction::Freeze { vm: VmId(1) }));
        assert!(matches!(
            actions[1],
            EvacAction::Export {
                vm: VmId(1),
                mode: EvacMode::Warm
            }
        ));
        assert!(matches!(actions[2], EvacAction::Reroute { .. }));
        assert!(matches!(actions[3], EvacAction::Install { .. }));
        assert!(matches!(actions[4], EvacAction::Thaw { .. }));
        assert!(matches!(
            actions[5],
            EvacAction::RetireShare { nsm: NsmId(1) }
        ));
        for (i, step) in plan.steps.iter().enumerate() {
            assert_eq!(step.id, i, "ids equal execution order");
            assert!(step.deps.iter().all(|d| *d < i), "deps point backwards");
        }
        assert_eq!(plan.steps[4].deps, vec![3]);
        assert_eq!(plan.steps[5].deps, vec![4], "retire waits for the chain");
        assert_eq!(plan.waves(), 2);
        assert_eq!(plan.warm_vms_of_wave(0), vec![VmId(1)]);
    }

    /// Drained chains skip freeze and reroute; pace bounds the wave width.
    #[test]
    fn pace_partitions_chains_into_waves() {
        let plan = EvacPlan::compile(
            HostId(1),
            &[drained(1, 2), drained(2, 3), drained(3, 2)],
            &[],
            2,
        )
        .expect("plan compiles");
        // Wave 0: two chains × (export, install, thaw); wave 1: one chain.
        assert_eq!(plan.steps.len(), 9);
        assert_eq!(plan.waves(), 2);
        assert!(plan.steps[..6].iter().all(|s| s.wave == 0));
        assert!(plan.steps[6..].iter().all(|s| s.wave == 1));
        assert!(plan
            .steps
            .iter()
            .all(|s| !matches!(s.action, EvacAction::Freeze { .. })));
        assert!(plan.warm_vms_of_wave(0).is_empty());
        // Phase-major inside the wave: both exports before both installs.
        assert!(matches!(
            plan.steps[0].action,
            EvacAction::Export { vm: VmId(1), .. }
        ));
        assert!(matches!(
            plan.steps[1].action,
            EvacAction::Export { vm: VmId(2), .. }
        ));
        assert!(matches!(
            plan.steps[2].action,
            EvacAction::Install { vm: VmId(1), .. }
        ));
    }

    /// Invalid plans are refused outright.
    #[test]
    fn invalid_plans_are_rejected() {
        assert_eq!(
            EvacPlan::compile(HostId(1), &[warm(1, 2)], &[], 0),
            Err(NkError::BadConfig),
            "zero pace"
        );
        assert_eq!(
            EvacPlan::compile(HostId(1), &[warm(1, 1)], &[], 1),
            Err(NkError::BadConfig),
            "move targets the evacuating host"
        );
        assert_eq!(
            EvacPlan::compile(HostId(1), &[warm(1, 2), drained(1, 3)], &[], 1),
            Err(NkError::BadConfig),
            "duplicate VM"
        );
    }

    /// The rollback worklist is the completed steps in reverse completion
    /// order — and only those.
    #[test]
    fn failure_yields_reverse_completion_order() {
        let plan = EvacPlan::compile(HostId(1), &[drained(1, 2)], &[NsmId(1)], 1).unwrap();
        let mut run = PlanRun::new(plan, 0, 0);
        assert!(run.ready(0), "first step has no deps");
        assert!(!run.ready(1), "install waits for the export");
        run.started(0, 10, 0);
        run.done(0, 10, 0);
        assert!(run.ready(1));
        run.started(1, 20, 0);
        run.done(1, 20, 0);
        let worklist = run.failed(2, NkError::InvalidState, 30, 0);
        assert_eq!(worklist, vec![1, 0], "reverse completion order");
        run.reverted(1, 40, 0);
        run.reverted(0, 50, 0);
        run.rolled_back(60, 0);
        assert_eq!(run.status(0), StepStatus::Reverted);
        assert_eq!(run.status(2), StepStatus::Failed);
        let last = run.events().last().unwrap();
        assert!(matches!(
            last.kind,
            PlanEventKind::PlanRolledBack { reverted: 2, .. }
        ));
        // seq is strictly increasing — the deterministic merge key.
        for (i, ev) in run.events().iter().enumerate() {
            assert_eq!(ev.seq, i as u32);
        }
    }

    /// Plans and plan events survive a JSON round trip (the log is part of
    /// the serializable record of a run).
    #[test]
    fn plans_and_events_round_trip_through_json() {
        let plan = EvacPlan::compile(
            HostId(1),
            &[warm(1, 2), drained(2, 3)],
            &[NsmId(1), NsmId(2)],
            2,
        )
        .unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: EvacPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);

        let mut run = PlanRun::new(plan, 5, 1);
        run.started(0, 6, 1);
        run.done(0, 6, 1);
        run.committed(7, 1);
        for ev in run.events() {
            let json = serde_json::to_string(ev).unwrap();
            let back: PlanEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, *ev);
        }
    }
}
