//! Skew-driven VM rebalancing across NSMs.

use crate::{EpochSample, LoadMonitor};
use nk_types::{ControlAction, ControlPolicy, ControlTarget, NsmId, VmId};
use std::collections::BTreeMap;

/// Live-migrates VMs off the hottest NSM onto the coolest one.
///
/// A migration fires only when the smoothed utilisation gap between the
/// most and least loaded NSM exceeds the policy skew *and* the source is
/// actually above the high watermark — balancing two comfortable NSMs is
/// churn, not an improvement. Candidates move busiest-first (their traffic
/// is the load being relocated), each VM is migrated at most once per
/// cooldown, at most `max_migrations_per_epoch` moves happen per epoch, and
/// anti-affine VMs are never co-located by a rebalance.
#[derive(Clone, Debug, Default)]
pub struct Rebalancer {
    /// Epoch each VM was last migrated in.
    last_moved: BTreeMap<VmId, u64>,
}

impl Rebalancer {
    /// A fresh rebalancer with no migration history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decide migrations for one epoch.
    pub fn decide(
        &mut self,
        policy: &ControlPolicy,
        epoch: u64,
        monitor: &LoadMonitor,
        sample: &EpochSample,
    ) -> Vec<ControlAction> {
        if sample.nsms.len() < 2 || policy.max_migrations_per_epoch == 0 {
            return Vec::new();
        }
        // Hottest and coolest NSM by smoothed utilisation (ties: lower id).
        let mut src: Option<(NsmId, f64)> = None;
        let mut dst: Option<(NsmId, f64)> = None;
        for id in sample.nsms.keys() {
            let util = monitor.smoothed(ControlTarget::Nsm(*id));
            if src.is_none_or(|(_, u)| util > u) {
                src = Some((*id, util));
            }
            if dst.is_none_or(|(_, u)| util < u) {
                dst = Some((*id, util));
            }
        }
        let (Some((src, src_util)), Some((dst, dst_util))) = (src, dst) else {
            return Vec::new();
        };
        if src == dst
            || !monitor.ready(ControlTarget::Nsm(src))
            || src_util - dst_util < policy.rebalance_skew
            || src_util <= policy.high_watermark
        {
            return Vec::new();
        }
        let Some(src_load) = sample.nsms.get(&src) else {
            return Vec::new();
        };
        let dst_vms: Vec<VmId> = sample
            .nsms
            .get(&dst)
            .map(|l| l.vm_bytes.keys().copied().collect())
            .unwrap_or_default();

        // Busiest VMs first; ties broken by id for determinism.
        let mut candidates: Vec<(VmId, u64)> = src_load
            .vm_bytes
            .iter()
            .map(|(vm, bytes)| (*vm, *bytes))
            .collect();
        candidates.sort_by_key(|&(vm, bytes)| (std::cmp::Reverse(bytes), vm));

        let mut actions = Vec::new();
        let mut placed: Vec<VmId> = dst_vms;
        for (vm, _) in candidates {
            if actions.len() >= policy.max_migrations_per_epoch {
                break;
            }
            if self
                .last_moved
                .get(&vm)
                .is_some_and(|last| epoch.saturating_sub(*last) <= policy.cooldown_epochs)
            {
                continue;
            }
            if placed.iter().any(|other| policy.conflicts(vm, *other)) {
                continue;
            }
            self.last_moved.insert(vm, epoch);
            placed.push(vm);
            actions.push(ControlAction::Rebalance {
                vm,
                from: src,
                to: dst,
            });
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NsmLoad;

    fn sample(src_vms: &[(u8, u64)], dst_vms: &[(u8, u64)]) -> EpochSample {
        let mut nsms = BTreeMap::new();
        nsms.insert(
            NsmId(1),
            NsmLoad {
                cores: 1,
                utilisation: 1.0,
                queue_depth: 4,
                vm_bytes: src_vms.iter().map(|&(v, b)| (VmId(v), b)).collect(),
            },
        );
        nsms.insert(
            NsmId(2),
            NsmLoad {
                cores: 1,
                utilisation: 0.0,
                queue_depth: 0,
                vm_bytes: dst_vms.iter().map(|&(v, b)| (VmId(v), b)).collect(),
            },
        );
        EpochSample {
            now_ns: 0,
            engine_cores: 1,
            engine_utilisation: 0.0,
            nsms,
        }
    }

    fn ready_monitor(sample: &EpochSample) -> LoadMonitor {
        let mut m = LoadMonitor::new(1);
        m.observe(sample);
        m
    }

    fn policy() -> ControlPolicy {
        ControlPolicy::new()
            .with_window(1)
            .with_watermarks(0.2, 0.7)
            .with_rebalance(0.5, 1)
            .with_cooldown(2)
    }

    #[test]
    fn skewed_load_migrates_the_busiest_vm() {
        let mut r = Rebalancer::new();
        let s = sample(&[(1, 100), (2, 900)], &[]);
        let actions = r.decide(&policy(), 0, &ready_monitor(&s), &s);
        assert_eq!(
            actions,
            vec![ControlAction::Rebalance {
                vm: VmId(2),
                from: NsmId(1),
                to: NsmId(2),
            }]
        );
    }

    #[test]
    fn balanced_or_comfortable_load_stays_put() {
        let mut r = Rebalancer::new();
        // Identical utilisation: no skew.
        let mut s = sample(&[(1, 100)], &[]);
        s.nsms.get_mut(&NsmId(2)).unwrap().utilisation = 1.0;
        let actions = r.decide(&policy(), 0, &ready_monitor(&s), &s);
        assert!(actions.is_empty());

        // Skewed but the hot NSM is under the high watermark: leave it be.
        let mut s = sample(&[(1, 100)], &[]);
        s.nsms.get_mut(&NsmId(1)).unwrap().utilisation = 0.6;
        let actions = r.decide(&policy(), 0, &ready_monitor(&s), &s);
        assert!(actions.is_empty());
    }

    #[test]
    fn migration_budget_bounds_moves_per_epoch() {
        let mut r = Rebalancer::new();
        let mut p = policy();
        p.max_migrations_per_epoch = 2;
        let s = sample(&[(1, 100), (2, 200), (3, 300)], &[]);
        let actions = r.decide(&p, 0, &ready_monitor(&s), &s);
        assert_eq!(actions.len(), 2);
        assert!(matches!(
            actions[0],
            ControlAction::Rebalance { vm: VmId(3), .. }
        ));
        assert!(matches!(
            actions[1],
            ControlAction::Rebalance { vm: VmId(2), .. }
        ));

        p.max_migrations_per_epoch = 0;
        let actions = r.decide(&p, 1, &ready_monitor(&s), &s);
        assert!(actions.is_empty());
    }

    #[test]
    fn anti_affinity_blocks_colocating_conflicting_vms() {
        let mut r = Rebalancer::new();
        let p = policy().with_anti_affinity(VmId(2), VmId(9));
        // VM 9 already lives on the target NSM: VM 2 may not join it, the
        // next-busiest candidate moves instead.
        let s = sample(&[(1, 100), (2, 900)], &[(9, 0)]);
        let actions = r.decide(&p, 0, &ready_monitor(&s), &s);
        assert_eq!(
            actions,
            vec![ControlAction::Rebalance {
                vm: VmId(1),
                from: NsmId(1),
                to: NsmId(2),
            }]
        );
    }

    /// An anti-affinity skip must not consume the per-epoch migration
    /// budget: the blocked candidate is passed over and the budget still
    /// buys two real moves.
    #[test]
    fn anti_affinity_skip_does_not_consume_budget() {
        let mut r = Rebalancer::new();
        let p = policy()
            .with_rebalance(0.5, 2)
            .with_anti_affinity(VmId(3), VmId(9));
        // vm3 is the busiest candidate but conflicts with vm9 on the
        // destination; vm2 and vm1 must both still move on this epoch.
        let s = sample(&[(1, 100), (2, 800), (3, 900)], &[(9, 0)]);
        let actions = r.decide(&p, 0, &ready_monitor(&s), &s);
        assert_eq!(
            actions,
            vec![
                ControlAction::Rebalance {
                    vm: VmId(2),
                    from: NsmId(1),
                    to: NsmId(2),
                },
                ControlAction::Rebalance {
                    vm: VmId(1),
                    from: NsmId(1),
                    to: NsmId(2),
                },
            ]
        );
    }

    /// Anti-affinity also binds against VMs placed *earlier in the same
    /// epoch*: once the budget has moved a VM to the destination, a
    /// conflicting candidate is skipped mid-epoch and the remaining budget
    /// goes to the next-busiest VM.
    #[test]
    fn anti_affinity_binds_against_same_epoch_placements() {
        let mut r = Rebalancer::new();
        let p = policy()
            .with_rebalance(0.5, 2)
            .with_anti_affinity(VmId(2), VmId(3));
        let s = sample(&[(1, 100), (2, 800), (3, 900)], &[]);
        let actions = r.decide(&p, 0, &ready_monitor(&s), &s);
        assert_eq!(
            actions,
            vec![
                ControlAction::Rebalance {
                    vm: VmId(3),
                    from: NsmId(1),
                    to: NsmId(2),
                },
                // vm2 conflicts with the just-placed vm3 → vm1 moves instead.
                ControlAction::Rebalance {
                    vm: VmId(1),
                    from: NsmId(1),
                    to: NsmId(2),
                },
            ]
        );
    }

    /// A crash of the destination NSM right after a migration must not
    /// reset the migrated VM's cooldown: when the NSM comes back (fresh
    /// monitor history) the VM still waits out the remaining epochs before
    /// it may move again.
    #[test]
    fn cooldown_survives_destination_nsm_crash() {
        let mut r = Rebalancer::new();
        let p = policy(); // cooldown 2
        let s = sample(&[(1, 900)], &[]);
        assert_eq!(r.decide(&p, 0, &ready_monitor(&s), &s).len(), 1);

        // Epoch 1: NSM 2 crashed — it vanishes from the sample, and a
        // single-NSM host can never rebalance.
        let mut solo = sample(&[(1, 900)], &[]);
        solo.nsms.remove(&NsmId(2));
        assert!(r.decide(&p, 1, &ready_monitor(&solo), &solo).is_empty());

        // Epoch 2: NSM 2 restarted with fresh history; the skew is back but
        // vm1's cooldown (epochs 0..=2) still blocks the move.
        let back = sample(&[(1, 900)], &[]);
        assert!(r.decide(&p, 2, &ready_monitor(&back), &back).is_empty());

        // Epoch 3: the cooldown expired — the move may happen again.
        assert_eq!(r.decide(&p, 3, &ready_monitor(&back), &back).len(), 1);
    }

    #[test]
    fn per_vm_cooldown_prevents_ping_pong() {
        let mut r = Rebalancer::new();
        let p = policy();
        let s = sample(&[(1, 100)], &[]);
        let m = ready_monitor(&s);
        assert_eq!(r.decide(&p, 0, &m, &s).len(), 1);
        // The same VM shows up hot on the other side next epoch (the load
        // followed it); within the cooldown it must not bounce back.
        let s_back = sample(&[(1, 100)], &[]);
        assert!(r.decide(&p, 1, &ready_monitor(&s_back), &s_back).is_empty());
        assert!(r.decide(&p, 2, &ready_monitor(&s_back), &s_back).is_empty());
        assert_eq!(r.decide(&p, 3, &ready_monitor(&s_back), &s_back).len(), 1);
    }

    #[test]
    fn single_nsm_hosts_never_rebalance() {
        let mut r = Rebalancer::new();
        let mut s = sample(&[(1, 100)], &[]);
        s.nsms.remove(&NsmId(2));
        assert!(r.decide(&policy(), 0, &ready_monitor(&s), &s).is_empty());
    }
}
