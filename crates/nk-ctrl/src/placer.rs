//! Cluster-scope placement: the per-host control loop, run over hosts.
//!
//! The placer is deliberately a *projection*, not a reimplementation: each
//! host is folded into one pseudo-NSM whose "utilisation" is its placement
//! score, and the existing [`LoadMonitor`] smoothing plus [`Rebalancer`]
//! source/destination/candidate logic (skew trigger, hot-watermark guard,
//! busiest-first candidates, per-VM cooldown, per-epoch budget) then apply
//! unchanged at cluster scope. What changes is only the load signal: a
//! host's score is the mean utilisation of its NSM cores *plus* the weighted
//! utilisation of its uplink, so a host saturating its cross-host trunk is a
//! worse placement target than its spare NSM capacity alone would suggest.

use crate::{EpochSample, LoadMonitor, NsmLoad, Rebalancer};
use nk_types::{
    ClusterPolicy, ControlAction, ControlPolicy, ControlTarget, HostId, NkResult, NsmId, VmId,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Load signals of one host over one placement epoch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HostLoad {
    /// Total cores currently allocated to the host's NSMs.
    pub nsm_cores: usize,
    /// Mean utilisation across the host's alive NSMs this epoch.
    pub nsm_utilisation: f64,
    /// Uplink (cross-host) utilisation this epoch: wire bytes carried over
    /// the uplink divided by its capacity for the epoch.
    pub uplink_utilisation: f64,
    /// Request NQEs parked in stall queues host-wide at sampling time.
    pub queue_depth: u64,
    /// Bytes forwarded this epoch per VM homed on the host. Every resident
    /// VM appears (idle ones with 0), so the map doubles as the placement
    /// snapshot migrations are planned against.
    pub vm_bytes: BTreeMap<VmId, u64>,
}

/// Everything the placer sees about one placement epoch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClusterSample {
    /// Virtual time at the end of the epoch.
    pub now_ns: u64,
    /// Per-host load, for every host alive at sampling time.
    pub hosts: BTreeMap<HostId, HostLoad>,
}

/// A cross-host migration the placer decided on. The cluster layer resolves
/// the destination NSM when executing (the placer reasons about hosts, not
/// about the NSMs inside them).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Migration {
    /// The VM to move.
    pub vm: VmId,
    /// The host it leaves.
    pub from: HostId,
    /// The host that takes over its new connections.
    pub to: HostId,
}

/// One placement decision after the mechanism layer tried to apply it. The
/// placer's [`Migration`]s are requests, not facts: a decision can race
/// reality (the VM already draining, the destination host dead), in which
/// case the cluster skips it and the placer re-observes next epoch. The
/// flight recorder keeps both halves — what was decided and whether it
/// happened — which is exactly the signal a skipped-decision loop hides.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionOutcome {
    /// Placement epoch the decision was taken in.
    pub epoch: u64,
    /// The VM the placer wanted to move.
    pub vm: VmId,
    /// The host it was to leave.
    pub from: HostId,
    /// The host that was to take over.
    pub to: HostId,
    /// Whether the mechanism applied the migration.
    pub applied: bool,
}

/// The cluster placement loop (monitor + rebalancer over hosts).
pub struct Placer {
    policy: ClusterPolicy,
    /// The cluster policy translated into the per-host control vocabulary
    /// the reused machinery consumes.
    inner: ControlPolicy,
    monitor: LoadMonitor,
    rebalancer: Rebalancer,
    /// Epoch each (VM, from, to) migration was last executed in. The
    /// *reverse* pair is checked before a move: a tenant that just
    /// travelled A → B may not bounce B → A until
    /// [`ClusterPolicy::pair_cooldown_epochs`] have passed — the
    /// cluster-scope hysteresis that stops an evacuation from load-following
    /// the tenant straight back.
    last_pair: BTreeMap<(VmId, HostId, HostId), u64>,
    epoch: u64,
}

impl Placer {
    /// Build a placer from a validated policy.
    pub fn new(policy: ClusterPolicy) -> NkResult<Self> {
        policy.validate()?;
        let inner = ControlPolicy::new()
            .with_epoch_ns(policy.epoch_ns)
            .with_window(policy.window)
            .with_watermarks(0.0, policy.hot_watermark)
            .with_cooldown(policy.cooldown_epochs)
            .with_rebalance(policy.spread, policy.max_migrations_per_epoch);
        inner.validate()?;
        let monitor = LoadMonitor::new(policy.window);
        Ok(Placer {
            policy,
            inner,
            monitor,
            rebalancer: Rebalancer::new(),
            last_pair: BTreeMap::new(),
            epoch: 0,
        })
    }

    /// The policy the placer runs under.
    pub fn policy(&self) -> &ClusterPolicy {
        &self.policy
    }

    /// Placement epochs completed so far.
    pub fn epochs(&self) -> u64 {
        self.epoch
    }

    /// Smoothed placement score of a host (0 when unknown).
    pub fn score(&self, host: HostId) -> f64 {
        self.monitor.smoothed(ControlTarget::Nsm(NsmId(host.raw())))
    }

    /// A host's raw placement score for one epoch: NSM load plus weighted
    /// cross-host traffic.
    fn score_of(&self, load: &HostLoad) -> f64 {
        load.nsm_utilisation + self.policy.cross_traffic_weight * load.uplink_utilisation
    }

    /// Run one placement epoch: fold the sample into the rolling windows
    /// and decide migrations, busiest VM first, hottest host → coolest
    /// host, under the cooldown and the per-epoch budget.
    pub fn on_epoch(&mut self, sample: &ClusterSample) -> Vec<Migration> {
        let mut nsms = BTreeMap::new();
        for (host, load) in &sample.hosts {
            nsms.insert(
                NsmId(host.raw()),
                NsmLoad {
                    cores: load.nsm_cores,
                    utilisation: self.score_of(load),
                    queue_depth: load.queue_depth,
                    vm_bytes: load.vm_bytes.clone(),
                },
            );
        }
        let pseudo = EpochSample {
            now_ns: sample.now_ns,
            engine_cores: 0,
            engine_utilisation: 0.0,
            nsms,
        };
        self.monitor.observe(&pseudo);
        let epoch = self.epoch;
        let actions = self
            .rebalancer
            .decide(&self.inner, epoch, &self.monitor, &pseudo);
        self.epoch += 1;
        let candidates = actions.into_iter().filter_map(|action| match action {
            ControlAction::Rebalance { vm, from, to } => Some(Migration {
                vm,
                from: HostId(from.raw()),
                to: HostId(to.raw()),
            }),
            _ => None,
        });
        let mut out = Vec::new();
        for m in candidates {
            // Per-(VM, host-pair) hysteresis: veto the reverse of a recent
            // move. The vetoed VM's per-VM cooldown was already stamped by
            // the rebalancer — extra damping, by design.
            let bounced = self.policy.pair_cooldown_epochs > 0
                && self
                    .last_pair
                    .get(&(m.vm, m.to, m.from))
                    .is_some_and(|&last| {
                        epoch.saturating_sub(last) <= self.policy.pair_cooldown_epochs
                    });
            if bounced {
                continue;
            }
            self.last_pair.insert((m.vm, m.from, m.to), epoch);
            out.push(m);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> ClusterPolicy {
        ClusterPolicy::new()
            .with_window(1)
            .with_thresholds(0.6, 0.4)
            .with_migration_budget(1)
            .with_cooldown(2)
            .with_cross_traffic_weight(0.5)
    }

    fn host_load(util: f64, uplink: f64, vms: &[(u8, u64)]) -> HostLoad {
        HostLoad {
            nsm_cores: 1,
            nsm_utilisation: util,
            uplink_utilisation: uplink,
            queue_depth: 0,
            vm_bytes: vms.iter().map(|&(v, b)| (VmId(v), b)).collect(),
        }
    }

    fn sample(h1: HostLoad, h2: HostLoad) -> ClusterSample {
        ClusterSample {
            now_ns: 0,
            hosts: [(HostId(1), h1), (HostId(2), h2)].into_iter().collect(),
        }
    }

    #[test]
    fn skewed_hosts_migrate_the_busiest_vm() {
        let mut p = Placer::new(policy()).unwrap();
        let s = sample(
            host_load(0.9, 0.0, &[(1, 100), (2, 900)]),
            host_load(0.1, 0.0, &[(3, 50)]),
        );
        let migrations = p.on_epoch(&s);
        assert_eq!(
            migrations,
            vec![Migration {
                vm: VmId(2),
                from: HostId(1),
                to: HostId(2),
            }]
        );
        assert!(p.score(HostId(1)) > p.score(HostId(2)));
        assert_eq!(p.epochs(), 1);
    }

    /// Cross-host traffic is part of the score: a host whose NSM cores look
    /// comfortable but whose uplink is saturated reads as hot.
    #[test]
    fn uplink_saturation_makes_a_host_hot() {
        let mut p = Placer::new(policy()).unwrap();
        // NSM utilisation alone (0.5) is under the 0.6 hot watermark; the
        // weighted uplink term (0.5 * 0.8) pushes the score to 0.9.
        let s = sample(host_load(0.5, 0.8, &[(1, 500)]), host_load(0.1, 0.0, &[]));
        assert_eq!(p.on_epoch(&s).len(), 1);

        // Without the uplink term the same host stays put.
        let mut p = Placer::new(policy()).unwrap();
        let s = sample(host_load(0.5, 0.0, &[(1, 500)]), host_load(0.1, 0.0, &[]));
        assert!(p.on_epoch(&s).is_empty());
    }

    #[test]
    fn balanced_hosts_stay_put() {
        let mut p = Placer::new(policy()).unwrap();
        let s = sample(
            host_load(0.8, 0.0, &[(1, 100)]),
            host_load(0.7, 0.0, &[(2, 100)]),
        );
        assert!(p.on_epoch(&s).is_empty(), "spread under threshold");
    }

    /// The reused per-VM cooldown spaces repeat migrations of one VM.
    #[test]
    fn migration_cooldown_applies_per_vm() {
        let mut p = Placer::new(policy()).unwrap();
        let hot_one = || sample(host_load(0.9, 0.0, &[(1, 900)]), host_load(0.05, 0.0, &[]));
        assert_eq!(p.on_epoch(&hot_one()).len(), 1);
        // The VM keeps showing up hot (its load followed it back in the
        // sample); within the cooldown it must not bounce.
        assert!(p.on_epoch(&hot_one()).is_empty());
        assert!(p.on_epoch(&hot_one()).is_empty());
        assert_eq!(p.on_epoch(&hot_one()).len(), 1);
    }

    /// The ping-pong regression: after an evacuation the load follows the
    /// tenant, so the reverse host looks hot next. The per-VM cooldown
    /// alone expires quickly; the per-(VM, host-pair) cooldown must keep
    /// vetoing the bounce-back until it expires too — while leaving other
    /// VMs and same-direction moves unaffected.
    #[test]
    fn pair_cooldown_blocks_the_bounce_back() {
        let pol = policy().with_cooldown(1).with_pair_cooldown(5);
        let mut p = Placer::new(pol).unwrap();

        // Epoch 0: host 1 is hot, vm1 evacuates 1 → 2.
        let s = sample(host_load(0.9, 0.0, &[(1, 900)]), host_load(0.05, 0.0, &[]));
        assert_eq!(
            p.on_epoch(&s),
            vec![Migration {
                vm: VmId(1),
                from: HostId(1),
                to: HostId(2),
            }]
        );

        // The load followed vm1: host 2 is now the hot one, every epoch.
        let back = || sample(host_load(0.05, 0.0, &[]), host_load(0.9, 0.0, &[(1, 900)]));
        // Epoch 1: per-VM cooldown (1) blocks; epochs 2..=5: the per-VM
        // cooldown has expired but the pair cooldown still vetoes the
        // reverse move (and each veto leaves the budget unspent).
        for epoch in 1..=5 {
            assert!(
                p.on_epoch(&back()).is_empty(),
                "epoch {epoch}: the bounce-back must be vetoed"
            );
        }
        // A *different* VM on the hot host is not pair-blocked.
        let other = sample(host_load(0.05, 0.0, &[]), host_load(0.9, 0.0, &[(2, 900)]));
        assert_eq!(
            p.on_epoch(&other),
            vec![Migration {
                vm: VmId(2),
                from: HostId(2),
                to: HostId(1),
            }]
        );
        // Once the pair cooldown expires the reverse move is legal again.
        let mut moved = false;
        for _ in 0..8 {
            if p.on_epoch(&back()).iter().any(|m| m.vm == VmId(1)) {
                moved = true;
                break;
            }
        }
        assert!(moved, "the pair cooldown must expire eventually");
    }

    /// `pair_cooldown_epochs == 0` disables the pair guard entirely: only
    /// the per-VM cooldown spaces the bounce.
    #[test]
    fn zero_pair_cooldown_disables_the_guard() {
        let pol = policy().with_cooldown(1).with_pair_cooldown(0);
        let mut p = Placer::new(pol).unwrap();
        let s = sample(host_load(0.9, 0.0, &[(1, 900)]), host_load(0.05, 0.0, &[]));
        assert_eq!(p.on_epoch(&s).len(), 1);
        let back = || sample(host_load(0.05, 0.0, &[]), host_load(0.9, 0.0, &[(1, 900)]));
        assert!(p.on_epoch(&back()).is_empty(), "per-VM cooldown epoch 1");
        assert_eq!(p.on_epoch(&back()).len(), 1, "bounce legal at epoch 2");
    }

    #[test]
    fn smoothing_window_defers_first_decision() {
        let pol = policy().with_window(2);
        let mut p = Placer::new(pol).unwrap();
        let s = sample(host_load(1.0, 0.0, &[(1, 900)]), host_load(0.0, 0.0, &[]));
        assert!(p.on_epoch(&s).is_empty(), "window not full yet");
        assert_eq!(p.on_epoch(&s).len(), 1);
    }

    #[test]
    fn invalid_policy_is_rejected() {
        assert!(Placer::new(ClusterPolicy::new().with_window(0)).is_err());
        assert!(Placer::new(ClusterPolicy::new().with_thresholds(0.0, 0.5)).is_err());
    }
}
