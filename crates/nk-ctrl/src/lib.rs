//! The operator control plane.
//!
//! NetKernel's architectural bet is that once the network stack is
//! provider-owned, the *operator* can manage it like any other piece of
//! infrastructure: watch its load, grow and shrink its cores, and move
//! tenants between stack instances without the guest noticing (paper §3).
//! The datapath and the migration mechanism exist elsewhere in the
//! workspace; this crate is the part that *decides*. It is deliberately
//! mechanism-free — it consumes plain load samples and returns plain
//! [`ControlAction`]s — so the host stays the single place that touches
//! queues, stacks and switches.
//!
//! Three cooperating parts, run once per control epoch:
//!
//! * [`monitor::LoadMonitor`] — folds per-epoch samples (per-NSM core
//!   utilisation, request-queue depth, per-VM throughput) into rolling
//!   windows, so decisions see smoothed load, not one bursty epoch;
//! * [`autoscale::Autoscaler`] — compares smoothed utilisation against the
//!   policy's watermarks and resizes CoreEngine / NSM core allocations,
//!   with per-target cooldowns for hysteresis;
//! * [`rebalance::Rebalancer`] — computes load skew across NSMs and
//!   live-migrates VMs off the hottest instance onto the coolest, under an
//!   anti-affinity constraint and a per-epoch migration budget.
//!
//! [`placer::Placer`] lifts the same loop to cluster scope: each host is
//! projected onto one pseudo-NSM whose utilisation is its placement score
//! (NSM load plus weighted cross-host traffic), and the monitor/rebalancer
//! machinery then decides cross-host VM migrations unchanged.
//!
//! [`evacuate`] adds the multi-step operation the one-shot decisions above
//! cannot express: clearing a whole host compiles into an [`EvacPlan`] —
//! a DAG of typed actions, each with a revert, paced into bounded waves —
//! and a [`PlanRun`] tracks execution so a mid-plan failure unwinds every
//! completed action in reverse order. The cluster layer supplies the
//! mechanism; this crate owns the plan's shape and its serializable
//! [`PlanEvent`] log.
//!
//! Everything is deterministic: state lives in `BTreeMap`s, decisions
//! derive only from the sampled history and the policy, and the same sample
//! stream always yields the same action stream — the property the
//! byte-identical scenario replays build on.

pub mod autoscale;
pub mod evacuate;
pub mod monitor;
pub mod placer;
pub mod rebalance;

use nk_types::{ControlAction, ControlPolicy, NkResult, NsmId, VmId};
use std::collections::BTreeMap;

pub use autoscale::Autoscaler;
pub use evacuate::{
    EvacAction, EvacMode, EvacMove, EvacPlan, EvacStep, PlanEvent, PlanEventKind, PlanRun,
    StepStatus,
};
pub use monitor::LoadMonitor;
pub use placer::{ClusterSample, DecisionOutcome, HostLoad, Migration, Placer};
pub use rebalance::Rebalancer;

/// Load signals of one NSM over one control epoch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NsmLoad {
    /// Cores currently allocated to the NSM.
    pub cores: usize,
    /// Fraction of the NSM's offered cycles spent on work this epoch.
    pub utilisation: f64,
    /// Request NQEs parked in stall queues towards this NSM at sampling
    /// time. Backpressure is the autoscaler's second overload signal: it
    /// forces a scale-up and vetoes a scale-down regardless of utilisation.
    pub queue_depth: u64,
    /// Bytes forwarded this epoch per VM currently mapped to the NSM.
    /// Every mapped VM appears, idle ones with 0, so the map doubles as the
    /// placement snapshot the rebalancer plans against.
    pub vm_bytes: BTreeMap<VmId, u64>,
}

/// Everything the control plane sees about one epoch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EpochSample {
    /// Virtual time at the end of the epoch.
    pub now_ns: u64,
    /// Cores currently allocated to CoreEngine.
    pub engine_cores: usize,
    /// CoreEngine utilisation this epoch.
    pub engine_utilisation: f64,
    /// Per-NSM load, for every NSM alive at sampling time.
    pub nsms: BTreeMap<NsmId, NsmLoad>,
}

/// The assembled control plane (monitor + autoscaler + rebalancer).
pub struct ControlPlane {
    policy: ControlPolicy,
    monitor: LoadMonitor,
    autoscaler: Autoscaler,
    rebalancer: Rebalancer,
    epoch: u64,
}

impl ControlPlane {
    /// Build a control plane from a validated policy.
    pub fn new(policy: ControlPolicy) -> NkResult<Self> {
        policy.validate()?;
        let monitor = LoadMonitor::new(policy.window);
        Ok(ControlPlane {
            policy,
            monitor,
            autoscaler: Autoscaler::new(),
            rebalancer: Rebalancer::new(),
            epoch: 0,
        })
    }

    /// The policy the plane runs under.
    pub fn policy(&self) -> &ControlPolicy {
        &self.policy
    }

    /// Epochs completed so far.
    pub fn epochs(&self) -> u64 {
        self.epoch
    }

    /// The load monitor (smoothed views for observability).
    pub fn monitor(&self) -> &LoadMonitor {
        &self.monitor
    }

    /// Run one control epoch: fold `sample` into the rolling windows, then
    /// let the autoscaler and the rebalancer decide. Returns the actions in
    /// the order they should be applied (scaling first, then migrations —
    /// a freshly grown NSM is a better migration target).
    pub fn on_epoch(&mut self, sample: &EpochSample) -> Vec<ControlAction> {
        self.monitor.observe(sample);
        let epoch = self.epoch;
        let mut actions = self
            .autoscaler
            .decide(&self.policy, epoch, &self.monitor, sample);
        actions.extend(
            self.rebalancer
                .decide(&self.policy, epoch, &self.monitor, sample),
        );
        self.epoch += 1;
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nk_types::ControlTarget;

    fn sample(nsm1_util: f64, nsm2_util: f64) -> EpochSample {
        let mut nsms = BTreeMap::new();
        nsms.insert(
            NsmId(1),
            NsmLoad {
                cores: 2,
                utilisation: nsm1_util,
                queue_depth: 0,
                vm_bytes: [(VmId(1), 1000u64), (VmId(2), 900u64)]
                    .into_iter()
                    .collect(),
            },
        );
        nsms.insert(
            NsmId(2),
            NsmLoad {
                cores: 2,
                utilisation: nsm2_util,
                queue_depth: 0,
                vm_bytes: BTreeMap::new(),
            },
        );
        EpochSample {
            now_ns: 0,
            engine_cores: 1,
            engine_utilisation: 0.3,
            nsms,
        }
    }

    /// A sustained overload produces a scale-up and a migration in the same
    /// epoch, in that order; an idle stretch later produces a scale-down.
    #[test]
    fn plane_scales_up_rebalances_then_scales_down() {
        let policy = ControlPolicy::new()
            .with_window(2)
            .with_watermarks(0.2, 0.7)
            .with_core_bounds(1, 4)
            .with_cooldown(1)
            .with_rebalance(0.4, 1);
        let mut plane = ControlPlane::new(policy).unwrap();

        // Epoch 0: window not full yet — no decisions.
        assert!(plane.on_epoch(&sample(1.0, 0.0)).is_empty());
        // Epoch 1: overload is now sustained.
        let actions = plane.on_epoch(&sample(1.0, 0.0));
        assert!(
            matches!(
                actions[0],
                ControlAction::ScaleUp {
                    target: ControlTarget::Nsm(NsmId(1)),
                    from_cores: 2,
                    to_cores: 3,
                    ..
                }
            ),
            "{actions:?}"
        );
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, ControlAction::Rebalance { from: NsmId(1), .. })),
            "{actions:?}"
        );

        // Load collapses; after the window refills with idle samples the
        // autoscaler shrinks the allocation again.
        let mut saw_scale_down = false;
        for _ in 0..4 {
            let actions = plane.on_epoch(&sample(0.05, 0.05));
            saw_scale_down |= actions
                .iter()
                .any(|a| matches!(a, ControlAction::ScaleDown { .. }));
        }
        assert!(saw_scale_down);
        assert_eq!(plane.epochs(), 6);
    }

    #[test]
    fn invalid_policy_is_rejected() {
        let bad = ControlPolicy::new().with_watermarks(0.9, 0.1);
        assert!(ControlPlane::new(bad).is_err());
    }
}
