//! Watermark-driven elastic core scaling.

use crate::{EpochSample, LoadMonitor};
use nk_types::{ControlAction, ControlPolicy, ControlTarget};
use std::collections::BTreeMap;

/// Scales CoreEngine and NSM core allocations against the policy's
/// watermarks.
///
/// Hysteresis comes from three places: decisions use the monitor's
/// *smoothed* utilisation, a component must have a full window of history
/// ([`LoadMonitor::ready`]), and consecutive decisions for the same target
/// are spaced by the policy cooldown. Together they keep a bursty workload
/// from thrashing the allocation up and down every epoch.
///
/// Backpressure ([`crate::NsmLoad::queue_depth`], request NQEs parked in
/// stall queues towards the NSM) is a second overload signal: a
/// backpressured NSM scales up even if its smoothed utilisation has not
/// crossed the high watermark yet, and is never scaled down.
#[derive(Clone, Debug, Default)]
pub struct Autoscaler {
    /// Epoch of the last scaling decision per target.
    last_action: BTreeMap<ControlTarget, u64>,
}

impl Autoscaler {
    /// A fresh autoscaler with no cooldowns running.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decide scaling actions for one epoch, in deterministic target order
    /// (CoreEngine first, then NSMs by id).
    pub fn decide(
        &mut self,
        policy: &ControlPolicy,
        epoch: u64,
        monitor: &LoadMonitor,
        sample: &EpochSample,
    ) -> Vec<ControlAction> {
        let mut targets = vec![(ControlTarget::Engine, sample.engine_cores, 0u64)];
        targets.extend(
            sample
                .nsms
                .iter()
                .map(|(id, load)| (ControlTarget::Nsm(*id), load.cores, load.queue_depth)),
        );
        let mut actions = Vec::new();
        for (target, cores, queue_depth) in targets {
            if let Some(action) =
                self.decide_one(policy, epoch, monitor, target, cores, queue_depth)
            {
                actions.push(action);
            }
        }
        actions
    }

    fn decide_one(
        &mut self,
        policy: &ControlPolicy,
        epoch: u64,
        monitor: &LoadMonitor,
        target: ControlTarget,
        cores: usize,
        queue_depth: u64,
    ) -> Option<ControlAction> {
        if !monitor.ready(target) || !self.cooled_down(policy, epoch, target) {
            return None;
        }
        let utilisation = monitor.smoothed(target);
        let overloaded = utilisation > policy.high_watermark || queue_depth > 0;
        let action = if overloaded && cores < policy.max_cores {
            Some(ControlAction::ScaleUp {
                target,
                from_cores: cores,
                to_cores: (cores + policy.scale_step).min(policy.max_cores),
                utilisation,
            })
        } else if utilisation < policy.low_watermark && queue_depth == 0 && cores > policy.min_cores
        {
            Some(ControlAction::ScaleDown {
                target,
                from_cores: cores,
                to_cores: cores
                    .saturating_sub(policy.scale_step)
                    .max(policy.min_cores),
                utilisation,
            })
        } else {
            None
        };
        if action.is_some() {
            self.last_action.insert(target, epoch);
        }
        action
    }

    fn cooled_down(&self, policy: &ControlPolicy, epoch: u64, target: ControlTarget) -> bool {
        match self.last_action.get(&target) {
            Some(last) => epoch.saturating_sub(*last) > policy.cooldown_epochs,
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NsmLoad;
    use nk_types::NsmId;

    fn policy() -> ControlPolicy {
        ControlPolicy::new()
            .with_window(1)
            .with_watermarks(0.2, 0.8)
            .with_core_bounds(1, 4)
            .with_cooldown(2)
    }

    fn sample(cores: usize, util: f64) -> EpochSample {
        let mut nsms = BTreeMap::new();
        nsms.insert(
            NsmId(1),
            NsmLoad {
                cores,
                utilisation: util,
                queue_depth: 0,
                vm_bytes: BTreeMap::new(),
            },
        );
        EpochSample {
            now_ns: 0,
            engine_cores: 1,
            engine_utilisation: 0.5,
            nsms,
        }
    }

    fn monitor_with(sample: &EpochSample) -> LoadMonitor {
        let mut m = LoadMonitor::new(1);
        m.observe(sample);
        m
    }

    #[test]
    fn overload_scales_up_idle_scales_down() {
        let policy = policy();
        let mut scaler = Autoscaler::new();
        let hot = sample(1, 0.95);
        let actions = scaler.decide(&policy, 0, &monitor_with(&hot), &hot);
        assert_eq!(
            actions,
            vec![ControlAction::ScaleUp {
                target: ControlTarget::Nsm(NsmId(1)),
                from_cores: 1,
                to_cores: 2,
                utilisation: 0.95,
            }]
        );

        let mut scaler = Autoscaler::new();
        let idle = sample(3, 0.05);
        let actions = scaler.decide(&policy, 0, &monitor_with(&idle), &idle);
        assert_eq!(
            actions,
            vec![ControlAction::ScaleDown {
                target: ControlTarget::Nsm(NsmId(1)),
                from_cores: 3,
                to_cores: 2,
                utilisation: 0.05,
            }]
        );
    }

    #[test]
    fn cooldown_spaces_consecutive_decisions() {
        let policy = policy();
        let mut scaler = Autoscaler::new();
        let hot = sample(1, 0.95);
        let m = monitor_with(&hot);
        assert_eq!(scaler.decide(&policy, 0, &m, &hot).len(), 1);
        // Epochs 1 and 2 are inside the cooldown; epoch 3 is past it.
        assert!(scaler.decide(&policy, 1, &m, &hot).is_empty());
        assert!(scaler.decide(&policy, 2, &m, &hot).is_empty());
        assert_eq!(scaler.decide(&policy, 3, &m, &hot).len(), 1);
    }

    #[test]
    fn bounds_clamp_scaling() {
        let policy = policy();
        let mut scaler = Autoscaler::new();
        // Already at the ceiling: overload changes nothing.
        let hot = sample(4, 1.0);
        assert!(scaler
            .decide(&policy, 0, &monitor_with(&hot), &hot)
            .is_empty());
        // Already at the floor: idleness changes nothing.
        let idle = sample(1, 0.0);
        assert!(scaler
            .decide(&policy, 5, &monitor_with(&idle), &idle)
            .is_empty());
    }

    #[test]
    fn watermark_band_is_stable() {
        let policy = policy();
        let mut scaler = Autoscaler::new();
        let ok = sample(2, 0.5);
        assert!(scaler
            .decide(&policy, 0, &monitor_with(&ok), &ok)
            .is_empty());
    }

    #[test]
    fn unready_window_defers_decisions() {
        let policy = ControlPolicy::new()
            .with_window(3)
            .with_watermarks(0.2, 0.8)
            .with_core_bounds(1, 4);
        let mut scaler = Autoscaler::new();
        let hot = sample(1, 1.0);
        let mut m = LoadMonitor::new(3);
        m.observe(&hot);
        assert!(scaler.decide(&policy, 0, &m, &hot).is_empty());
        m.observe(&hot);
        m.observe(&hot);
        assert_eq!(scaler.decide(&policy, 2, &m, &hot).len(), 1);
    }

    /// Backpressure is an overload signal of its own: a backpressured NSM
    /// scales up even in the watermark band, and never scales down.
    #[test]
    fn backpressure_forces_scale_up_and_blocks_scale_down() {
        let policy = policy();
        let mut scaler = Autoscaler::new();
        let mut mid = sample(2, 0.5); // inside the stable band
        mid.nsms.get_mut(&NsmId(1)).unwrap().queue_depth = 7;
        let actions = scaler.decide(&policy, 0, &monitor_with(&mid), &mid);
        assert!(
            matches!(actions[..], [ControlAction::ScaleUp { .. }]),
            "{actions:?}"
        );

        let mut scaler = Autoscaler::new();
        let mut idle_but_stalled = sample(3, 0.05); // under the low watermark
        idle_but_stalled
            .nsms
            .get_mut(&NsmId(1))
            .unwrap()
            .queue_depth = 1;
        let actions = scaler.decide(
            &policy,
            0,
            &monitor_with(&idle_but_stalled),
            &idle_but_stalled,
        );
        // Stalled NQEs mean the component is not actually idle: it scales
        // up (backpressure wins), never down.
        assert!(
            !actions
                .iter()
                .any(|a| matches!(a, ControlAction::ScaleDown { .. })),
            "{actions:?}"
        );
    }

    #[test]
    fn engine_scales_like_an_nsm() {
        let policy = ControlPolicy::new()
            .with_window(1)
            .with_watermarks(0.2, 0.8)
            .with_core_bounds(1, 4);
        let mut scaler = Autoscaler::new();
        let mut s = sample(2, 0.5);
        s.engine_cores = 1;
        s.engine_utilisation = 0.9;
        let actions = scaler.decide(&policy, 0, &monitor_with(&s), &s);
        assert_eq!(
            actions,
            vec![ControlAction::ScaleUp {
                target: ControlTarget::Engine,
                from_cores: 1,
                to_cores: 2,
                utilisation: 0.9,
            }]
        );
    }
}
