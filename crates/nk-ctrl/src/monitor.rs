//! Rolling-window load monitoring.

use crate::EpochSample;
use nk_types::{ControlTarget, NsmId};
use std::collections::{BTreeMap, VecDeque};

/// A bounded window of utilisation samples for one component.
#[derive(Clone, Debug, Default)]
struct Window {
    samples: VecDeque<f64>,
}

impl Window {
    fn push(&mut self, value: f64, capacity: usize) {
        self.samples.push_back(value);
        while self.samples.len() > capacity {
            self.samples.pop_front();
        }
    }

    fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }
}

/// Folds per-epoch [`EpochSample`]s into rolling per-component windows.
///
/// The monitor is what gives the loop hysteresis on the *input* side: a
/// single bursty epoch moves the smoothed value by only `1/window`, so
/// watermark crossings reflect sustained load. Components only act once
/// their window is full ([`LoadMonitor::ready`]), which also keeps a
/// freshly restarted NSM from being scaled on one sample of history.
#[derive(Clone, Debug)]
pub struct LoadMonitor {
    window: usize,
    windows: BTreeMap<ControlTarget, Window>,
}

impl LoadMonitor {
    /// A monitor smoothing over `window` epochs (clamped to at least one).
    pub fn new(window: usize) -> Self {
        LoadMonitor {
            window: window.max(1),
            windows: BTreeMap::new(),
        }
    }

    /// The configured window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Fold one epoch's sample in. NSMs absent from the sample (crashed or
    /// deprovisioned) have their history dropped: a component that comes
    /// back starts a fresh window.
    pub fn observe(&mut self, sample: &EpochSample) {
        self.windows.retain(|target, _| match target {
            ControlTarget::Engine => true,
            ControlTarget::Nsm(id) => sample.nsms.contains_key(id),
        });
        self.windows
            .entry(ControlTarget::Engine)
            .or_default()
            .push(sample.engine_utilisation, self.window);
        for (id, load) in &sample.nsms {
            self.windows
                .entry(ControlTarget::Nsm(*id))
                .or_default()
                .push(load.utilisation, self.window);
        }
    }

    /// Smoothed utilisation of a component (0 when unknown).
    pub fn smoothed(&self, target: ControlTarget) -> f64 {
        self.windows.get(&target).map(Window::mean).unwrap_or(0.0)
    }

    /// True once the component's window is full — the earliest point a
    /// scaling or rebalancing decision may use it.
    pub fn ready(&self, target: ControlTarget) -> bool {
        self.windows
            .get(&target)
            .is_some_and(|w| w.samples.len() >= self.window)
    }

    /// Smoothed utilisations of every tracked NSM, in id order.
    pub fn nsm_loads(&self) -> Vec<(NsmId, f64)> {
        self.windows
            .iter()
            .filter_map(|(target, w)| match target {
                ControlTarget::Nsm(id) => Some((*id, w.mean())),
                ControlTarget::Engine => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NsmLoad;

    fn sample_with(nsms: &[(u8, f64)]) -> EpochSample {
        EpochSample {
            now_ns: 0,
            engine_cores: 1,
            engine_utilisation: 0.5,
            nsms: nsms
                .iter()
                .map(|&(id, util)| {
                    (
                        NsmId(id),
                        NsmLoad {
                            cores: 1,
                            utilisation: util,
                            queue_depth: 0,
                            vm_bytes: BTreeMap::new(),
                        },
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn smoothing_averages_over_the_window() {
        let mut m = LoadMonitor::new(2);
        m.observe(&sample_with(&[(1, 1.0)]));
        assert!(!m.ready(ControlTarget::Nsm(NsmId(1))));
        assert_eq!(m.smoothed(ControlTarget::Nsm(NsmId(1))), 1.0);
        m.observe(&sample_with(&[(1, 0.0)]));
        assert!(m.ready(ControlTarget::Nsm(NsmId(1))));
        assert_eq!(m.smoothed(ControlTarget::Nsm(NsmId(1))), 0.5);
        // The window slides: a third sample evicts the first.
        m.observe(&sample_with(&[(1, 0.0)]));
        assert_eq!(m.smoothed(ControlTarget::Nsm(NsmId(1))), 0.0);
        assert_eq!(m.smoothed(ControlTarget::Engine), 0.5);
    }

    #[test]
    fn unknown_components_read_as_idle() {
        let m = LoadMonitor::new(4);
        assert_eq!(m.smoothed(ControlTarget::Nsm(NsmId(9))), 0.0);
        assert!(!m.ready(ControlTarget::Engine));
    }

    /// A crashed NSM loses its history; when it reappears it starts fresh
    /// and is not `ready` until its window refills.
    #[test]
    fn vanished_nsm_history_is_dropped() {
        let mut m = LoadMonitor::new(1);
        m.observe(&sample_with(&[(1, 0.9), (2, 0.1)]));
        assert!(m.ready(ControlTarget::Nsm(NsmId(1))));
        m.observe(&sample_with(&[(2, 0.1)]));
        assert!(!m.ready(ControlTarget::Nsm(NsmId(1))));
        assert_eq!(m.smoothed(ControlTarget::Nsm(NsmId(1))), 0.0);
        assert_eq!(m.nsm_loads(), vec![(NsmId(2), 0.1)]);
    }

    #[test]
    fn zero_window_is_clamped() {
        let m = LoadMonitor::new(0);
        assert_eq!(m.window(), 1);
    }
}
