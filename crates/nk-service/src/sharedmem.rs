//! The shared-memory NSM (use case 4, §6.4).
//!
//! When two VMs of the same tenant are colocated on a host, their traffic
//! does not need TCP at all: the operator-controlled NSM "simply copies the
//! message chunks between their hugepages and bypasses the TCP stack
//! processing", reaching ~100 Gbps with a handful of cores (Figure 10). This
//! module implements that NSM: it speaks the same NQE protocol as any other
//! NSM, but matches connections internally and moves payload
//! hugepage-to-hugepage.

use nk_queue::{NkDevice, ResponderEnd};
use nk_shmem::HugepageRegion;
use nk_types::ops::op_data;
use nk_types::{
    DataHandle, NkError, Nqe, NsmId, OpResult, OpType, QueueSetId, SockAddr, SocketId, VmId,
};
use std::collections::BTreeMap;

/// Guest socket ids allocated by the NSM for accepted connections.
const NSM_SOCKET_ID_BASE: u32 = 0x8000_0000;

#[derive(Clone, Copy, Debug)]
struct ShmSocket {
    vm: VmId,
    vm_qs: QueueSetId,
    nsm_qs: usize,
    bound: Option<SockAddr>,
    peer: Option<(VmId, SocketId)>,
}

/// Statistics of the shared-memory NSM.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SharedMemStats {
    /// Connections matched between colocated VMs.
    pub pairs: u64,
    /// Bytes copied hugepage-to-hugepage.
    pub bytes_copied: u64,
}

/// The shared-memory NSM.
pub struct SharedMemNsm {
    id: NsmId,
    device: NkDevice<ResponderEnd>,
    /// Ordered maps throughout, per the workspace determinism rule.
    regions: BTreeMap<VmId, HugepageRegion>,
    sockets: BTreeMap<(VmId, SocketId), ShmSocket>,
    /// port → listening socket key.
    listeners: BTreeMap<u16, (VmId, SocketId)>,
    next_guest_sock: u32,
    batch: usize,
    stats: SharedMemStats,
    /// Reusable NQE drain buffer (swapped out during a tick because the
    /// request handlers need `&mut self`).
    scratch: Vec<Nqe>,
}

impl SharedMemNsm {
    /// Build a shared-memory NSM around its NK device.
    pub fn new(id: NsmId, device: NkDevice<ResponderEnd>, batch: usize) -> Self {
        SharedMemNsm {
            id,
            device,
            regions: BTreeMap::new(),
            sockets: BTreeMap::new(),
            listeners: BTreeMap::new(),
            next_guest_sock: NSM_SOCKET_ID_BASE,
            batch: batch.max(1),
            stats: SharedMemStats::default(),
            scratch: Vec::new(),
        }
    }

    /// The NSM's identifier.
    pub fn id(&self) -> NsmId {
        self.id
    }

    /// Statistics.
    pub fn stats(&self) -> SharedMemStats {
        self.stats
    }

    /// Register a VM and the hugepage region it shares with this NSM.
    pub fn add_vm(&mut self, vm: VmId, region: HugepageRegion) {
        self.regions.insert(vm, region);
    }

    /// Detach a VM: its region mapping and any of its sockets (including
    /// listener registrations) are dropped. Called when the VM migrates to
    /// another NSM or leaves the host — a stale mapping here would pin the
    /// region alive and resurrect the VM on a later restart.
    pub fn remove_vm(&mut self, vm: VmId) {
        self.regions.remove(&vm);
        self.sockets.retain(|(owner, _), _| *owner != vm);
        self.listeners.retain(|_, (owner, _)| *owner != vm);
    }

    /// True while this NSM holds state for the VM.
    pub fn has_vm(&self, vm: VmId) -> bool {
        self.regions.contains_key(&vm)
    }

    fn respond(&mut self, nsm_qs: usize, nqe: Nqe) {
        if let Some(end) = self.device.queue_set(nsm_qs) {
            let _ = end.respond(nqe);
        }
    }

    fn reply(&mut self, nsm_qs: usize, request: &Nqe, result: OpResult, aux: u32) {
        if let Some(comp) = Nqe::completion_for(request, result, aux) {
            self.respond(nsm_qs, comp);
        }
    }

    /// Drain and handle request NQEs. Returns the number handled.
    pub fn tick(&mut self, _now_ns: u64) -> usize {
        let mut handled = 0;
        let sets = self.device.queue_sets();
        let mut buf = std::mem::take(&mut self.scratch);
        for qs in 0..sets {
            loop {
                let n = match self.device.queue_set(qs) {
                    Some(end) => end.pop_requests(&mut buf, self.batch),
                    None => 0,
                };
                if n == 0 {
                    break;
                }
                for nqe in buf.drain(..) {
                    self.handle(qs, nqe);
                    handled += 1;
                }
            }
        }
        self.scratch = buf;
        handled
    }

    fn handle(&mut self, nsm_qs: usize, nqe: Nqe) {
        let key = (nqe.vm, nqe.socket);
        match nqe.op {
            OpType::SocketCreate => {
                self.sockets.insert(
                    key,
                    ShmSocket {
                        vm: nqe.vm,
                        vm_qs: nqe.queue_set,
                        nsm_qs,
                        bound: None,
                        peer: None,
                    },
                );
                self.reply(nsm_qs, &nqe, OpResult::Ok, 0);
            }
            OpType::Bind => {
                if let Some(s) = self.sockets.get_mut(&key) {
                    s.bound = Some(nqe.addr());
                    self.reply(nsm_qs, &nqe, OpResult::Ok, 0);
                } else {
                    self.reply(nsm_qs, &nqe, OpResult::Err(NkError::BadSocket), 0);
                }
            }
            OpType::Listen => {
                let port = self.sockets.get(&key).and_then(|s| s.bound).map(|a| a.port);
                match port {
                    Some(p) => {
                        self.listeners.insert(p, key);
                        self.reply(nsm_qs, &nqe, OpResult::Ok, 0);
                    }
                    None => self.reply(nsm_qs, &nqe, OpResult::Err(NkError::InvalidState), 0),
                }
            }
            OpType::Connect => {
                self.handle_connect(nsm_qs, &nqe);
            }
            OpType::Send => {
                self.handle_send(nsm_qs, &nqe);
            }
            OpType::Close => {
                if let Some(sock) = self.sockets.remove(&key) {
                    if let Some(peer_key) = sock.peer {
                        if let Some(peer) = self.sockets.get(&peer_key).copied() {
                            let ev = Nqe::new(OpType::PeerClosed, peer.vm, peer.vm_qs, peer_key.1);
                            self.respond(peer.nsm_qs, ev);
                        }
                    }
                    if let Some(addr) = sock.bound {
                        if self.listeners.get(&addr.port) == Some(&key) {
                            self.listeners.remove(&addr.port);
                        }
                    }
                    self.reply(nsm_qs, &nqe, OpResult::Ok, 0);
                } else {
                    self.reply(nsm_qs, &nqe, OpResult::Err(NkError::BadSocket), 0);
                }
            }
            OpType::Shutdown | OpType::SetSockOpt => {
                self.reply(nsm_qs, &nqe, OpResult::Ok, 0);
            }
            OpType::RecvConsumed => {}
            _ => {
                self.reply(nsm_qs, &nqe, OpResult::Err(NkError::Unsupported), 0);
            }
        }
    }

    fn handle_connect(&mut self, nsm_qs: usize, nqe: &Nqe) {
        let key = (nqe.vm, nqe.socket);
        let target = nqe.addr();
        let Some(&listener_key) = self.listeners.get(&target.port) else {
            self.reply(nsm_qs, nqe, OpResult::Err(NkError::ConnRefused), 0);
            return;
        };
        let Some(listener) = self.sockets.get(&listener_key).copied() else {
            self.reply(nsm_qs, nqe, OpResult::Err(NkError::ConnRefused), 0);
            return;
        };
        // Allocate the accepted-side guest socket and wire the pair up.
        let accepted_id = SocketId(self.next_guest_sock);
        self.next_guest_sock += 1;
        let accepted_key = (listener.vm, accepted_id);
        self.sockets.insert(
            accepted_key,
            ShmSocket {
                vm: listener.vm,
                vm_qs: listener.vm_qs,
                nsm_qs: listener.nsm_qs,
                bound: None,
                peer: Some(key),
            },
        );
        if let Some(connector) = self.sockets.get_mut(&key) {
            connector.peer = Some(accepted_key);
        }
        self.stats.pairs += 1;

        // Tell the listening VM about the new connection...
        let mut accepted = Nqe::new(
            OpType::Accepted,
            listener.vm,
            listener.vm_qs,
            listener_key.1,
        );
        accepted.op_data = op_data::pack(OpResult::Ok, accepted_id.raw());
        accepted.data = DataHandle(SockAddr::new(0, nqe.socket.raw() as u16).pack());
        self.respond(listener.nsm_qs, accepted);
        // ...and the connecting VM that it succeeded.
        self.reply(nsm_qs, nqe, OpResult::Ok, 0);
    }

    fn handle_send(&mut self, nsm_qs: usize, nqe: &Nqe) {
        let key = (nqe.vm, nqe.socket);
        let Some(sock) = self.sockets.get(&key).copied() else {
            self.reply(nsm_qs, nqe, OpResult::Err(NkError::BadSocket), 0);
            return;
        };
        let Some(peer_key) = sock.peer else {
            self.reply(nsm_qs, nqe, OpResult::Err(NkError::NotConnected), 0);
            return;
        };
        let Some(peer) = self.sockets.get(&peer_key).copied() else {
            self.reply(nsm_qs, nqe, OpResult::Err(NkError::ConnReset), 0);
            return;
        };
        let len = nqe.size as usize;
        let (Some(src_region), Some(dst_region)) =
            (self.regions.get(&sock.vm), self.regions.get(&peer.vm))
        else {
            self.reply(nsm_qs, nqe, OpResult::Err(NkError::NotFound), 0);
            return;
        };
        // Copy hugepage → hugepage, bypassing any TCP processing.
        let result = dst_region.alloc(len).and_then(|dst| {
            src_region.copy_to(nqe.data, dst_region, dst, len)?;
            src_region.free(nqe.data)?;
            Ok(dst)
        });
        match result {
            Ok(dst) => {
                self.stats.bytes_copied += len as u64;
                let mut data_ev = Nqe::new(OpType::DataReceived, peer.vm, peer.vm_qs, peer_key.1);
                data_ev.data = dst;
                data_ev.size = len as u32;
                self.respond(peer.nsm_qs, data_ev);
                // Return the send-buffer credit to the sender.
                let mut comp = Nqe::completion_for(nqe, OpResult::Ok, 0).expect("send completes");
                comp.size = len as u32;
                self.respond(nsm_qs, comp);
            }
            Err(e) => self.reply(nsm_qs, nqe, OpResult::Err(e), 0),
        }
    }
}

impl nk_sim::Pollable for SharedMemNsm {
    fn poll(&mut self, now_ns: u64) -> usize {
        self.tick(now_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nk_queue::{queue_set_pair, RequesterEnd, WakeState};

    /// Two colocated VMs of the same tenant attached to one shared-memory
    /// NSM. The test drives the requester ends directly (playing GuestLib and
    /// CoreEngine).
    struct World {
        nsm: SharedMemNsm,
        vm1_end: RequesterEnd,
        vm2_end: RequesterEnd,
        region1: HugepageRegion,
        region2: HugepageRegion,
    }

    impl World {
        fn new() -> Self {
            // One NSM queue set per VM (queue set 0 → VM1, 1 → VM2).
            let (vm1_end, nsm_end1) = queue_set_pair(256);
            let (vm2_end, nsm_end2) = queue_set_pair(256);
            let device = NkDevice::new(vec![nsm_end1, nsm_end2], WakeState::new());
            let mut nsm = SharedMemNsm::new(NsmId(9), device, 8);
            let region1 = HugepageRegion::with_capacity(1 << 20);
            let region2 = HugepageRegion::with_capacity(1 << 20);
            nsm.add_vm(VmId(1), region1.clone());
            nsm.add_vm(VmId(2), region2.clone());
            World {
                nsm,
                vm1_end,
                vm2_end,
                region1,
                region2,
            }
        }

        fn responses(&mut self, vm: u8) -> Vec<Nqe> {
            let mut out = Vec::new();
            match vm {
                1 => self.vm1_end.pop_responses(&mut out, 64),
                _ => self.vm2_end.pop_responses(&mut out, 64),
            };
            out
        }
    }

    fn req(vm: u8, op: OpType, sock: u32) -> Nqe {
        Nqe::new(op, VmId(vm), QueueSetId(0), SocketId(sock))
    }

    fn setup_listener(w: &mut World) {
        w.vm1_end.submit(req(1, OpType::SocketCreate, 1)).unwrap();
        w.vm1_end
            .submit(req(1, OpType::Bind, 1).with_op_data(SockAddr::new(0, 8080).pack()))
            .unwrap();
        w.vm1_end
            .submit(req(1, OpType::Listen, 1).with_op_data(16))
            .unwrap();
        w.nsm.tick(0);
        let _ = w.responses(1);
    }

    #[test]
    fn colocated_vms_connect_through_shared_memory() {
        let mut w = World::new();
        setup_listener(&mut w);

        w.vm2_end.submit(req(2, OpType::SocketCreate, 1)).unwrap();
        w.vm2_end
            .submit(req(2, OpType::Connect, 1).with_op_data(SockAddr::new(0, 8080).pack()))
            .unwrap();
        w.nsm.tick(0);

        let vm2 = w.responses(2);
        assert!(vm2
            .iter()
            .any(|n| n.op == OpType::ConnectComplete && n.result().is_ok()));
        let vm1 = w.responses(1);
        let accepted: Vec<&Nqe> = vm1.iter().filter(|n| n.op == OpType::Accepted).collect();
        assert_eq!(accepted.len(), 1);
        assert_eq!(w.nsm.stats().pairs, 1);
    }

    #[test]
    fn send_copies_between_hugepage_regions() {
        let mut w = World::new();
        setup_listener(&mut w);
        w.vm2_end.submit(req(2, OpType::SocketCreate, 1)).unwrap();
        w.vm2_end
            .submit(req(2, OpType::Connect, 1).with_op_data(SockAddr::new(0, 8080).pack()))
            .unwrap();
        w.nsm.tick(0);
        let _ = w.responses(2);
        let _ = w.responses(1);

        // VM2 sends a message: it lands in VM1's region.
        let payload = b"zero copy-ish shared memory path".to_vec();
        let handle = w.region2.alloc_and_write(&payload).unwrap();
        w.vm2_end
            .submit(req(2, OpType::Send, 1).with_data(handle, payload.len() as u32))
            .unwrap();
        w.nsm.tick(0);

        let vm1 = w.responses(1);
        let data: Vec<&Nqe> = vm1
            .iter()
            .filter(|n| n.op == OpType::DataReceived)
            .collect();
        assert_eq!(data.len(), 1);
        let mut out = vec![0u8; data[0].size as usize];
        w.region1.read(data[0].data, &mut out).unwrap();
        assert_eq!(out, payload);

        let vm2 = w.responses(2);
        assert!(vm2
            .iter()
            .any(|n| n.op == OpType::SendComplete && n.size as usize == payload.len()));
        assert_eq!(w.nsm.stats().bytes_copied, payload.len() as u64);
    }

    #[test]
    fn connect_to_unknown_port_is_refused() {
        let mut w = World::new();
        w.vm2_end.submit(req(2, OpType::SocketCreate, 1)).unwrap();
        w.vm2_end
            .submit(req(2, OpType::Connect, 1).with_op_data(SockAddr::new(0, 9999).pack()))
            .unwrap();
        w.nsm.tick(0);
        let vm2 = w.responses(2);
        assert!(vm2.iter().any(|n| n.op == OpType::ConnectComplete
            && n.result() == OpResult::Err(NkError::ConnRefused)));
    }

    #[test]
    fn close_notifies_peer() {
        let mut w = World::new();
        setup_listener(&mut w);
        w.vm2_end.submit(req(2, OpType::SocketCreate, 1)).unwrap();
        w.vm2_end
            .submit(req(2, OpType::Connect, 1).with_op_data(SockAddr::new(0, 8080).pack()))
            .unwrap();
        w.nsm.tick(0);
        let _ = w.responses(2);
        let vm1 = w.responses(1);
        let accepted_sock = vm1
            .iter()
            .find(|n| n.op == OpType::Accepted)
            .map(|n| n.aux())
            .unwrap();

        w.vm2_end.submit(req(2, OpType::Close, 1)).unwrap();
        w.nsm.tick(0);
        let vm1 = w.responses(1);
        assert!(vm1
            .iter()
            .any(|n| n.op == OpType::PeerClosed && n.socket == SocketId(accepted_sock)));
    }
}
