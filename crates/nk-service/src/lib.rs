//! ServiceLib and the Network Stack Modules (NSMs).
//!
//! An NSM is the provider-operated entity that actually runs a network stack
//! on behalf of tenant VMs (paper §3–§4). Inside it, *ServiceLib* "interfaces
//! with the network stack": it translates request NQEs arriving from
//! CoreEngine into stack calls, moves payload between the shared hugepages
//! and the stack, and turns stack events back into completion / data NQEs.
//!
//! Provided modules:
//!
//! * [`service`] — [`service::ServiceLib`] plus [`service::Nsm`], the generic
//!   NSM wrapper binding a ServiceLib to a [`nk_netstack::TcpStack`]. The
//!   same wrapper implements both the *kernel-stack NSM* and the *mTCP NSM*
//!   (the difference is which cost profile and batching the host charges, and
//!   how many queue sets / cores it gets);
//! * [`sharedmem`] — the shared-memory NSM of use case 4 (§6.4), which copies
//!   payload hugepage-to-hugepage between colocated VMs and bypasses TCP
//!   entirely;
//! * [`fairshare`] — helpers giving each VM one Seawall-style shared
//!   congestion window (use case 2, §6.2).

pub mod fairshare;
pub mod service;
pub mod sharedmem;

pub use fairshare::VmWindowRegistry;
pub use service::{Nsm, ServiceLib, ServiceStats};
pub use sharedmem::SharedMemNsm;
