//! ServiceLib: translating NQEs to network-stack calls and back.

use crate::fairshare::VmWindowRegistry;
use nk_netstack::{StackEvent, TcpStack};
use nk_queue::{NkDevice, ResponderEnd};
use nk_shmem::HugepageRegion;
use nk_types::api::ShutdownHow;
use nk_types::ops::op_data;
use nk_types::{
    DataHandle, NkError, NkResult, Nqe, NsmId, OpResult, OpType, QueueSetId, SocketId, StackKind,
    VmId,
};
use std::collections::{BTreeMap, VecDeque};

/// Guest socket ids allocated by ServiceLib (for accepted connections) start
/// at this value so they can never collide with guest-allocated ids.
pub const NSM_SOCKET_ID_BASE: u32 = 0x8000_0000;

/// Largest chunk of received payload announced to the guest in one NQE.
const RX_CHUNK: usize = 16 * 1024;
/// Per-connection cap on bytes parked in the hugepages awaiting `recv()`.
const RX_BUDGET: usize = 256 * 1024;

/// Statistics exposed by a ServiceLib instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Request NQEs processed.
    pub requests: u64,
    /// Completion / event NQEs emitted.
    pub responses: u64,
    /// Payload bytes moved from hugepages into the stack.
    pub bytes_tx: u64,
    /// Payload bytes moved from the stack into hugepages.
    pub bytes_rx: u64,
    /// Connections accepted on behalf of guests.
    pub accepted: u64,
}

/// Per-connection context linking a stack socket back to its guest tuple.
#[derive(Clone, Copy, Debug)]
struct ConnCtx {
    vm: VmId,
    guest_sock: SocketId,
    /// VM-side queue set the guest pinned this socket to (used by CoreEngine
    /// to route responses back to the right vCPU).
    vm_qs: QueueSetId,
    /// NSM-side queue set proactive events are pushed on.
    nsm_qs: usize,
}

/// The NSM-side library translating between NQEs and the network stack
/// (paper §4.2, §4.5).
pub struct ServiceLib {
    nsm: NsmId,
    device: NkDevice<ResponderEnd>,
    regions: BTreeMap<VmId, HugepageRegion>,
    /// guest tuple → stack socket. Ordered maps throughout: ServiceLib
    /// iterates its connections every tick, and that order must be the same
    /// across runs for seeded scenarios to replay exactly.
    fwd: BTreeMap<(VmId, SocketId), SocketId>,
    /// stack socket → guest context.
    ctx: BTreeMap<SocketId, ConnCtx>,
    /// Payload accepted from guests but not yet taken by the stack.
    pending_send: BTreeMap<SocketId, VecDeque<Vec<u8>>>,
    /// Bytes announced to the guest and not yet consumed (receive credit).
    rx_outstanding: BTreeMap<SocketId, usize>,
    /// Per-VM Seawall windows (fair-share NSM only).
    fair_share: Option<VmWindowRegistry>,
    next_guest_sock: u32,
    batch: usize,
    stats: ServiceStats,
    /// Reusable NQE drain buffer (swapped out during a tick because the
    /// request handlers need `&mut self`).
    scratch: Vec<Nqe>,
}

impl ServiceLib {
    /// Build a ServiceLib for NSM `nsm` around its NK device.
    pub fn new(nsm: NsmId, device: NkDevice<ResponderEnd>, batch: usize) -> Self {
        ServiceLib {
            nsm,
            device,
            regions: BTreeMap::new(),
            fwd: BTreeMap::new(),
            ctx: BTreeMap::new(),
            pending_send: BTreeMap::new(),
            rx_outstanding: BTreeMap::new(),
            fair_share: None,
            next_guest_sock: NSM_SOCKET_ID_BASE,
            batch: batch.max(1),
            stats: ServiceStats::default(),
            scratch: Vec::new(),
        }
    }

    /// Enable per-VM shared congestion windows (fair-share NSM, §6.2).
    pub fn enable_fair_share(&mut self) {
        self.fair_share = Some(VmWindowRegistry::new());
    }

    /// Register a VM served by this NSM together with the hugepage region it
    /// shares with us.
    pub fn add_vm(&mut self, vm: VmId, region: HugepageRegion) {
        self.regions.insert(vm, region);
    }

    /// Detach a VM: the region mapping and all translation state of its
    /// sockets go. Called when the VM migrates away or leaves the host — a
    /// stale mapping would pin the hugepage region alive in an NSM that no
    /// longer serves the VM.
    pub fn remove_vm(&mut self, vm: VmId, stack: &mut TcpStack) {
        self.regions.remove(&vm);
        let stale: Vec<((VmId, SocketId), SocketId)> = self
            .fwd
            .iter()
            .filter(|((owner, _), _)| *owner == vm)
            .map(|(k, s)| (*k, *s))
            .collect();
        for (key, sock) in stale {
            let _ = stack.close(sock);
            self.fwd.remove(&key);
            self.ctx.remove(&sock);
            self.pending_send.remove(&sock);
            self.rx_outstanding.remove(&sock);
        }
    }

    /// True while this ServiceLib holds state for the VM (region mapping or
    /// live sockets).
    pub fn has_vm(&self, vm: VmId) -> bool {
        self.regions.contains_key(&vm) || self.fwd.keys().any(|(owner, _)| *owner == vm)
    }

    // ---- Warm-migration export / install ------------------------------------

    /// Tear one guest socket's translation state out of this ServiceLib for
    /// a warm migration: returns the stack-side socket, the payload queued
    /// but not yet pushed into the stack, and the outstanding receive
    /// credit. The caller exports the stack connection under the returned
    /// socket id.
    pub fn extract_conn(
        &mut self,
        vm: VmId,
        guest_sock: SocketId,
    ) -> NkResult<(SocketId, Vec<Vec<u8>>, usize)> {
        let sock = self
            .fwd
            .remove(&(vm, guest_sock))
            .ok_or(NkError::BadSocket)?;
        self.ctx.remove(&sock);
        let pending = self
            .pending_send
            .remove(&sock)
            .map(|q| q.into_iter().collect())
            .unwrap_or_default();
        let outstanding = self.rx_outstanding.remove(&sock).unwrap_or(0);
        Ok((sock, pending, outstanding))
    }

    /// The stack-side socket a guest tuple currently maps to, if any.
    pub fn stack_sock_of(&self, vm: VmId, guest_sock: SocketId) -> Option<SocketId> {
        self.fwd.get(&(vm, guest_sock)).copied()
    }

    /// Wire a warm-migrated connection into this ServiceLib: the guest
    /// tuple maps to `stack_sock` (freshly installed into the destination
    /// stack), queued payload resumes flushing, and the receive-credit
    /// accounting continues where the source left off. `nsm_qs` must be the
    /// NSM-side queue set CoreEngine pinned the tuple to.
    #[allow(clippy::too_many_arguments)]
    pub fn install_conn(
        &mut self,
        vm: VmId,
        guest_sock: SocketId,
        vm_qs: QueueSetId,
        nsm_qs: usize,
        stack_sock: SocketId,
        pending_send: Vec<Vec<u8>>,
        rx_outstanding: usize,
    ) -> NkResult<()> {
        if self.fwd.contains_key(&(vm, guest_sock)) || self.ctx.contains_key(&stack_sock) {
            return Err(NkError::AlreadyRegistered);
        }
        self.fwd.insert((vm, guest_sock), stack_sock);
        self.ctx.insert(
            stack_sock,
            ConnCtx {
                vm,
                guest_sock,
                vm_qs,
                nsm_qs,
            },
        );
        if !pending_send.is_empty() {
            self.pending_send
                .insert(stack_sock, pending_send.into_iter().collect());
        }
        if rx_outstanding > 0 {
            self.rx_outstanding.insert(stack_sock, rx_outstanding);
        }
        Ok(())
    }

    /// Statistics.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// The NSM this ServiceLib belongs to.
    pub fn nsm(&self) -> NsmId {
        self.nsm
    }

    fn alloc_guest_sock(&mut self) -> SocketId {
        let id = SocketId(self.next_guest_sock);
        self.next_guest_sock += 1;
        id
    }

    fn respond(&mut self, nsm_qs: usize, nqe: Nqe) {
        if let Some(end) = self.device.queue_set(nsm_qs) {
            if end.respond(nqe).is_ok() {
                self.stats.responses += 1;
            }
        }
    }

    /// Drain request NQEs from every queue set and apply them to `stack`.
    pub fn process_requests(&mut self, stack: &mut TcpStack, now_ns: u64) -> usize {
        let mut handled = 0;
        let sets = self.device.queue_sets();
        let mut buf = std::mem::take(&mut self.scratch);
        for qs in 0..sets {
            loop {
                let n = match self.device.queue_set(qs) {
                    Some(end) => end.pop_requests(&mut buf, self.batch),
                    None => 0,
                };
                if n == 0 {
                    break;
                }
                for nqe in buf.drain(..) {
                    self.handle_request(stack, qs, nqe, now_ns);
                    handled += 1;
                }
            }
        }
        self.scratch = buf;
        handled
    }

    fn handle_request(&mut self, stack: &mut TcpStack, nsm_qs: usize, nqe: Nqe, now_ns: u64) {
        self.stats.requests += 1;
        let key = (nqe.vm, nqe.socket);
        match nqe.op {
            OpType::SocketCreate => {
                let sock = stack.socket();
                self.fwd.insert(key, sock);
                self.ctx.insert(
                    sock,
                    ConnCtx {
                        vm: nqe.vm,
                        guest_sock: nqe.socket,
                        vm_qs: nqe.queue_set,
                        nsm_qs,
                    },
                );
                self.reply(nsm_qs, &nqe, Ok(()), sock.raw());
            }
            OpType::Bind => {
                let res = self.stack_sock(key).and_then(|s| stack.bind(s, nqe.addr()));
                self.reply(nsm_qs, &nqe, res, 0);
            }
            OpType::Listen => {
                let res = self
                    .stack_sock(key)
                    .and_then(|s| stack.listen(s, nqe.op_data as u32));
                self.reply(nsm_qs, &nqe, res, 0);
            }
            OpType::Connect => {
                let res = match self.stack_sock(key) {
                    Ok(s) => {
                        let cc = self.fair_share.as_mut().map(|reg| reg.cc_for(nqe.vm));
                        stack.connect_with_cc(s, nqe.addr(), now_ns, cc)
                    }
                    Err(e) => Err(e),
                };
                // Success is reported only when the handshake completes (the
                // stack raises a Connected event); failures are immediate.
                if let Err(e) = res {
                    self.reply(nsm_qs, &nqe, Err(e), 0);
                }
            }
            OpType::Send => {
                self.handle_send(stack, nsm_qs, &nqe);
            }
            OpType::RecvConsumed => {
                if let Ok(s) = self.stack_sock(key) {
                    let out = self.rx_outstanding.entry(s).or_insert(0);
                    *out = out.saturating_sub(nqe.size as usize);
                }
            }
            OpType::Shutdown => {
                let res = self
                    .stack_sock(key)
                    .and_then(|s| stack.shutdown(s, ShutdownHow::decode(nqe.op_data)));
                self.reply(nsm_qs, &nqe, res, 0);
            }
            OpType::Close => {
                let res = match self.stack_sock(key) {
                    Ok(s) => {
                        let r = stack.close(s);
                        self.fwd.remove(&key);
                        self.ctx.remove(&s);
                        self.pending_send.remove(&s);
                        self.rx_outstanding.remove(&s);
                        r
                    }
                    Err(e) => Err(e),
                };
                self.reply(nsm_qs, &nqe, res, 0);
            }
            OpType::SetSockOpt => {
                let res = self.stack_sock(key).and_then(|s| {
                    stack.set_sockopt(
                        s,
                        op_data::sockopt_opt(nqe.op_data),
                        op_data::sockopt_value(nqe.op_data),
                    )
                });
                self.reply(nsm_qs, &nqe, res, 0);
            }
            OpType::GetSockOpt | OpType::Accept => {
                self.reply(nsm_qs, &nqe, Err(NkError::Unsupported), 0);
            }
            _ => {}
        }
    }

    fn handle_send(&mut self, stack: &mut TcpStack, nsm_qs: usize, nqe: &Nqe) {
        let key = (nqe.vm, nqe.socket);
        let Ok(sock) = self.stack_sock(key) else {
            self.reply(nsm_qs, nqe, Err(NkError::BadSocket), 0);
            return;
        };
        let Some(region) = self.regions.get(&nqe.vm) else {
            self.reply(nsm_qs, nqe, Err(NkError::NotFound), 0);
            return;
        };
        // Pull the payload out of the shared hugepages — this is the extra
        // copy §7.8 attributes NetKernel's throughput overhead to.
        let len = nqe.size as usize;
        let data = match region.read_and_free(nqe.data, len) {
            Ok(d) => d,
            Err(e) => {
                self.reply(nsm_qs, nqe, Err(e), 0);
                return;
            }
        };
        self.stats.bytes_tx += len as u64;
        self.pending_send.entry(sock).or_default().push_back(data);
        // Try to push into the stack right away; whatever is accepted is
        // acknowledged back to the guest as returned send-buffer credit.
        let flushed = self.flush_socket(stack, sock);
        if flushed > 0 {
            self.send_credit(sock, flushed);
        }
    }

    fn stack_sock(&self, key: (VmId, SocketId)) -> NkResult<SocketId> {
        self.fwd.get(&key).copied().ok_or(NkError::BadSocket)
    }

    fn reply(&mut self, nsm_qs: usize, request: &Nqe, res: NkResult<()>, aux: u32) {
        let result = match &res {
            Ok(()) => OpResult::Ok,
            Err(e) => OpResult::Err(*e),
        };
        if let Some(comp) = Nqe::completion_for(request, result, aux) {
            self.respond(nsm_qs, comp);
        }
    }

    fn send_credit(&mut self, sock: SocketId, bytes: usize) {
        let Some(ctx) = self.ctx.get(&sock).copied() else {
            return;
        };
        let mut comp = Nqe::new(OpType::SendComplete, ctx.vm, ctx.vm_qs, ctx.guest_sock);
        comp.op_data = op_data::pack(OpResult::Ok, 0);
        comp.size = bytes as u32;
        self.respond(ctx.nsm_qs, comp);
    }

    fn flush_socket(&mut self, stack: &mut TcpStack, sock: SocketId) -> usize {
        let Some(queue) = self.pending_send.get_mut(&sock) else {
            return 0;
        };
        let mut flushed = 0;
        while let Some(front) = queue.front_mut() {
            match stack.send(sock, front) {
                Ok(n) => {
                    flushed += n;
                    if n == front.len() {
                        queue.pop_front();
                    } else {
                        front.drain(..n);
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        flushed
    }

    /// Push pending payload into the stack and return credit to guests.
    pub fn flush_pending(&mut self, stack: &mut TcpStack) {
        let socks: Vec<SocketId> = self
            .pending_send
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(s, _)| *s)
            .collect();
        for sock in socks {
            let flushed = self.flush_socket(stack, sock);
            if flushed > 0 {
                self.send_credit(sock, flushed);
            }
        }
    }

    /// Turn stack events into NQEs and ship received payload to the guests.
    pub fn process_stack(&mut self, stack: &mut TcpStack, _now_ns: u64) {
        for event in stack.take_events() {
            match event {
                StackEvent::Acceptable(listener) => {
                    self.drain_accepts(stack, listener);
                }
                StackEvent::Connected(sock) => {
                    if let Some(ctx) = self.ctx.get(&sock).copied() {
                        let mut comp =
                            Nqe::new(OpType::ConnectComplete, ctx.vm, ctx.vm_qs, ctx.guest_sock);
                        comp.op_data = op_data::pack(OpResult::Ok, sock.raw());
                        self.respond(ctx.nsm_qs, comp);
                    }
                }
                StackEvent::ConnectFailed(sock) => {
                    if let Some(ctx) = self.ctx.get(&sock).copied() {
                        let mut comp =
                            Nqe::new(OpType::ConnectComplete, ctx.vm, ctx.vm_qs, ctx.guest_sock);
                        comp.op_data = op_data::pack(OpResult::Err(NkError::ConnRefused), 0);
                        self.respond(ctx.nsm_qs, comp);
                    }
                }
                StackEvent::PeerClosed(sock) => {
                    if let Some(ctx) = self.ctx.get(&sock).copied() {
                        let ev = Nqe::new(OpType::PeerClosed, ctx.vm, ctx.vm_qs, ctx.guest_sock);
                        self.respond(ctx.nsm_qs, ev);
                    }
                }
                StackEvent::Readable(_) | StackEvent::Writable(_) => {}
            }
        }
        self.pump_receive(stack);
        self.flush_pending(stack);
    }

    fn drain_accepts(&mut self, stack: &mut TcpStack, listener: SocketId) {
        // The listener context tells us which guest owns it.
        let Some(lctx) = self.ctx.get(&listener).copied() else {
            return;
        };
        while let Ok((conn, peer)) = stack.accept(listener) {
            let guest_id = self.alloc_guest_sock();
            self.fwd.insert((lctx.vm, guest_id), conn);
            self.ctx.insert(
                conn,
                ConnCtx {
                    vm: lctx.vm,
                    guest_sock: guest_id,
                    vm_qs: lctx.vm_qs,
                    nsm_qs: lctx.nsm_qs,
                },
            );
            self.stats.accepted += 1;
            let mut ev = Nqe::new(OpType::Accepted, lctx.vm, lctx.vm_qs, lctx.guest_sock);
            ev.op_data = op_data::pack(OpResult::Ok, guest_id.raw());
            ev.data = DataHandle(peer.pack());
            self.respond(lctx.nsm_qs, ev);
        }
    }

    fn pump_receive(&mut self, stack: &mut TcpStack) {
        let socks: Vec<(SocketId, ConnCtx)> = self.ctx.iter().map(|(s, c)| (*s, *c)).collect();
        for (sock, ctx) in socks {
            let Some(region) = self.regions.get(&ctx.vm).cloned() else {
                continue;
            };
            loop {
                let outstanding = *self.rx_outstanding.get(&sock).unwrap_or(&0);
                let credit = RX_BUDGET.saturating_sub(outstanding);
                if credit == 0 {
                    break;
                }
                let want = credit.min(RX_CHUNK);
                let mut buf = vec![0u8; want];
                match stack.recv(sock, &mut buf) {
                    Ok(0) => {
                        // EOF is announced via the PeerClosed event.
                        break;
                    }
                    Ok(n) => {
                        buf.truncate(n);
                        let Ok(handle) = region.alloc_and_write(&buf) else {
                            break;
                        };
                        self.stats.bytes_rx += n as u64;
                        *self.rx_outstanding.entry(sock).or_insert(0) += n;
                        let mut ev =
                            Nqe::new(OpType::DataReceived, ctx.vm, ctx.vm_qs, ctx.guest_sock);
                        ev.data = handle;
                        ev.size = n as u32;
                        self.respond(ctx.nsm_qs, ev);
                    }
                    Err(_) => break,
                }
            }
        }
    }
}

/// A Network Stack Module: a ServiceLib bound to a concrete network stack.
///
/// Both the kernel-stack NSM and the mTCP NSM are instances of this type —
/// they run the same from-scratch TCP substrate but are provisioned and cost-
/// accounted differently (the mTCP NSM uses poll-mode batching and a cheaper
/// per-operation profile in the host's cost model, mirroring §6.3/§7.4).
pub struct Nsm {
    id: NsmId,
    kind: StackKind,
    service: ServiceLib,
    stack: TcpStack,
}

impl Nsm {
    /// Assemble an NSM from its parts.
    pub fn new(id: NsmId, kind: StackKind, mut service: ServiceLib, stack: TcpStack) -> Self {
        if kind == StackKind::FairShare {
            service.enable_fair_share();
        }
        Nsm {
            id,
            kind,
            service,
            stack,
        }
    }

    /// The NSM's identifier.
    pub fn id(&self) -> NsmId {
        self.id
    }

    /// Which stack flavour this NSM runs.
    pub fn kind(&self) -> StackKind {
        self.kind
    }

    /// Register a VM served by this NSM.
    pub fn add_vm(&mut self, vm: VmId, region: HugepageRegion) {
        self.service.add_vm(vm, region);
    }

    /// Detach a VM: its region mapping and translation state go (any of
    /// its sockets still in the stack are closed).
    pub fn remove_vm(&mut self, vm: VmId) {
        self.service.remove_vm(vm, &mut self.stack);
    }

    /// True while this NSM holds state for the VM.
    pub fn serves_vm(&self, vm: VmId) -> bool {
        self.service.has_vm(vm)
    }

    /// Borrow the underlying stack immutably (wire-quiet queries).
    pub fn stack(&self) -> &TcpStack {
        &self.stack
    }

    /// Export one guest connection's NSM-side state for a warm migration:
    /// the TCP snapshot plus ServiceLib's queued payload and receive
    /// credit. The connection leaves this NSM entirely.
    pub fn export_conn(
        &mut self,
        vm: VmId,
        guest_sock: SocketId,
    ) -> NkResult<(nk_types::TcpConnSnapshot, Vec<Vec<u8>>, usize)> {
        // Snapshot the stack side first: if the connection is not in a
        // transplantable phase the export fails *before* any translation
        // state is torn out.
        let stack_sock = self
            .service
            .stack_sock_of(vm, guest_sock)
            .ok_or(NkError::BadSocket)?;
        let snap = self.stack.export_conn(stack_sock)?;
        let (_, pending, outstanding) = self
            .service
            .extract_conn(vm, guest_sock)
            .expect("mapping observed above");
        Ok((snap, pending, outstanding))
    }

    /// Install a warm-migrated connection into this NSM: the TCP state
    /// machine goes into the stack under a fresh socket id, and ServiceLib
    /// resumes translation for the guest tuple on `nsm_qs`. Returns the
    /// stack-side socket id for the CoreEngine connection table.
    pub fn install_conn(
        &mut self,
        vm: VmId,
        conn: &nk_types::ConnSnapshot,
        nsm_qs: usize,
    ) -> NkResult<SocketId> {
        let stack_sock = self.stack.install_conn(&conn.tcp)?;
        if let Err(e) = self.service.install_conn(
            vm,
            conn.guest_sock,
            conn.vm_queue_set,
            nsm_qs,
            stack_sock,
            conn.pending_send.clone(),
            conn.rx_outstanding,
        ) {
            // Unwind the stack install so a refused wiring leaves no
            // orphaned connection behind.
            let _ = self.stack.export_conn(stack_sock);
            return Err(e);
        }
        Ok(stack_sock)
    }

    /// ServiceLib statistics.
    pub fn service_stats(&self) -> ServiceStats {
        self.service.stats()
    }

    /// Stack statistics.
    pub fn stack_stats(&self) -> nk_netstack::stack::StackStats {
        self.stack.stats()
    }

    /// Borrow the underlying stack (used by tests and the host).
    pub fn stack_mut(&mut self) -> &mut TcpStack {
        &mut self.stack
    }

    /// One scheduling round: ingest requests, run the stack, emit events.
    /// Returns the number of NQEs and segments processed.
    pub fn tick(&mut self, now_ns: u64) -> usize {
        let mut work = self.service.process_requests(&mut self.stack, now_ns);
        work += self.stack.tick(now_ns);
        self.service.process_stack(&mut self.stack, now_ns);
        work
    }
}

impl nk_sim::Pollable for Nsm {
    fn poll(&mut self, now_ns: u64) -> usize {
        self.tick(now_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nk_fabric::switch::VirtualSwitch;
    use nk_netstack::{Segment, StackConfig};
    use nk_queue::{queue_set_pair, RequesterEnd, WakeState};
    use nk_types::SockAddr;

    const NSM_IP: u32 = 0x0A00_0010;
    const REMOTE_IP: u32 = 0x0A00_0020;

    /// A little world: one NSM (serving VM 1) and one remote peer stack,
    /// connected by a switch. The test plays the roles of GuestLib and
    /// CoreEngine by talking to the requester end directly.
    struct World {
        switch: VirtualSwitch<Segment>,
        nsm: Nsm,
        remote: TcpStack,
        guest_end: RequesterEnd,
        region: HugepageRegion,
        now: u64,
    }

    impl World {
        fn new(kind: StackKind) -> Self {
            let mut switch = VirtualSwitch::new();
            let nsm_port = switch.attach(NSM_IP);
            let remote_port = switch.attach(REMOTE_IP);
            let (guest_end, nsm_end) = queue_set_pair(1024);
            let device = NkDevice::new(vec![nsm_end], WakeState::new());
            let region = HugepageRegion::with_capacity(4 << 20);
            let service = ServiceLib::new(NsmId(1), device, 8);
            let stack = TcpStack::new(StackConfig::new(NSM_IP), nsm_port);
            let mut nsm = Nsm::new(NsmId(1), kind, service, stack);
            nsm.add_vm(VmId(1), region.clone());
            World {
                switch,
                nsm,
                remote: TcpStack::new(StackConfig::new(REMOTE_IP), remote_port),
                guest_end,
                region,
                now: 0,
            }
        }

        fn run(&mut self, rounds: usize) {
            for _ in 0..rounds {
                self.now += 100_000;
                self.nsm.tick(self.now);
                self.remote.tick(self.now);
                self.switch.step(self.now);
            }
        }

        fn submit(&mut self, nqe: Nqe) {
            self.guest_end.submit(nqe).unwrap();
        }

        fn responses(&mut self) -> Vec<Nqe> {
            let mut out = Vec::new();
            self.guest_end.pop_responses(&mut out, 128);
            out
        }
    }

    fn req(op: OpType, sock: u32) -> Nqe {
        Nqe::new(op, VmId(1), QueueSetId(0), SocketId(sock))
    }

    #[test]
    fn socket_create_and_bind_listen_complete() {
        let mut w = World::new(StackKind::Kernel);
        w.submit(req(OpType::SocketCreate, 1));
        w.submit(req(OpType::Bind, 1).with_op_data(SockAddr::new(0, 80).pack()));
        w.submit(req(OpType::Listen, 1).with_op_data(16));
        w.run(2);
        let resp = w.responses();
        let ops: Vec<OpType> = resp.iter().map(|n| n.op).collect();
        assert!(ops.contains(&OpType::SocketCreated));
        assert!(ops.contains(&OpType::BindComplete));
        assert!(ops.contains(&OpType::ListenComplete));
        assert!(resp.iter().all(|n| n.result().is_ok()));
    }

    #[test]
    fn connect_from_remote_produces_accepted_event() {
        let mut w = World::new(StackKind::Kernel);
        w.submit(req(OpType::SocketCreate, 1));
        w.submit(req(OpType::Bind, 1).with_op_data(SockAddr::new(0, 80).pack()));
        w.submit(req(OpType::Listen, 1).with_op_data(16));
        w.run(2);
        let _ = w.responses();

        // Remote host connects to the NSM-hosted listener.
        let rs = w.remote.socket();
        w.remote
            .connect(rs, SockAddr::new(NSM_IP, 80), w.now)
            .unwrap();
        w.run(10);
        let resp = w.responses();
        let accepted: Vec<&Nqe> = resp.iter().filter(|n| n.op == OpType::Accepted).collect();
        assert_eq!(accepted.len(), 1);
        assert!(accepted[0].aux() >= NSM_SOCKET_ID_BASE);
        assert_eq!(
            accepted[0].socket,
            SocketId(1),
            "event targets the listener"
        );
        assert_eq!(w.nsm.service_stats().accepted, 1);
    }

    #[test]
    fn guest_connect_send_and_receive_via_nsm() {
        let mut w = World::new(StackKind::Kernel);
        // Remote echo listener.
        let ls = w.remote.socket();
        w.remote.bind(ls, SockAddr::new(0, 7)).unwrap();
        w.remote.listen(ls, 8).unwrap();

        // Guest: socket + connect.
        w.submit(req(OpType::SocketCreate, 5));
        w.submit(req(OpType::Connect, 5).with_op_data(SockAddr::new(REMOTE_IP, 7).pack()));
        w.run(10);
        let resp = w.responses();
        assert!(
            resp.iter()
                .any(|n| n.op == OpType::ConnectComplete && n.result().is_ok()),
            "{resp:?}"
        );

        // Guest sends payload through the hugepages.
        let payload = b"ping through netkernel".to_vec();
        let handle = w.region.alloc_and_write(&payload).unwrap();
        w.submit(req(OpType::Send, 5).with_data(handle, payload.len() as u32));
        w.run(10);
        let resp = w.responses();
        let credit: u32 = resp
            .iter()
            .filter(|n| n.op == OpType::SendComplete)
            .map(|n| n.size)
            .sum();
        assert_eq!(credit as usize, payload.len());

        // The remote server receives it and echoes it back.
        let (conn, _) = w.remote.accept(ls).unwrap();
        let mut buf = vec![0u8; 64];
        let n = w.remote.recv(conn, &mut buf).unwrap();
        assert_eq!(&buf[..n], payload.as_slice());
        w.remote.send(conn, &buf[..n]).unwrap();
        w.run(10);

        // The guest is notified of received data living in the hugepages.
        let resp = w.responses();
        let data: Vec<&Nqe> = resp
            .iter()
            .filter(|n| n.op == OpType::DataReceived)
            .collect();
        assert_eq!(data.len(), 1);
        let mut out = vec![0u8; data[0].size as usize];
        w.region.read(data[0].data, &mut out).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn close_cleans_up_mappings() {
        let mut w = World::new(StackKind::Kernel);
        w.submit(req(OpType::SocketCreate, 9));
        w.run(1);
        w.submit(req(OpType::Close, 9));
        w.run(1);
        let resp = w.responses();
        assert!(resp.iter().any(|n| n.op == OpType::CloseComplete));
        // A second close on the same guest socket now fails.
        w.submit(req(OpType::Close, 9));
        w.run(1);
        let resp = w.responses();
        assert!(resp
            .iter()
            .any(|n| n.op == OpType::CloseComplete && !n.result().is_ok()));
    }

    #[test]
    fn connect_refused_reports_failure() {
        let mut w = World::new(StackKind::Kernel);
        w.submit(req(OpType::SocketCreate, 3));
        w.submit(req(OpType::Connect, 3).with_op_data(SockAddr::new(REMOTE_IP, 9999).pack()));
        w.run(15);
        let resp = w.responses();
        assert!(
            resp.iter()
                .any(|n| n.op == OpType::ConnectComplete && !n.result().is_ok()),
            "{resp:?}"
        );
    }

    /// A VM detached from an NSM leaves nothing behind: no region mapping,
    /// no socket translation state, and its stack sockets are closed.
    #[test]
    fn remove_vm_detaches_region_and_sockets() {
        let mut w = World::new(StackKind::Kernel);
        let ls = w.remote.socket();
        w.remote.bind(ls, SockAddr::new(0, 7)).unwrap();
        w.remote.listen(ls, 8).unwrap();
        w.submit(req(OpType::SocketCreate, 5));
        w.submit(req(OpType::Connect, 5).with_op_data(SockAddr::new(REMOTE_IP, 7).pack()));
        w.run(10);
        assert!(w.nsm.serves_vm(VmId(1)));

        w.nsm.remove_vm(VmId(1));
        assert!(!w.nsm.serves_vm(VmId(1)));
        // Later requests from the detached VM fail cleanly (no region).
        w.submit(req(OpType::Send, 5).with_data(DataHandle(0), 4));
        w.run(2);
        let resp = w.responses();
        assert!(resp
            .iter()
            .any(|n| n.op == OpType::SendComplete && !n.result().is_ok()));
    }

    /// A connection exported from one NSM and installed into another keeps
    /// its guest tuple working end to end: pending payload flushes, receive
    /// credit survives, and the peer sees a contiguous byte stream.
    #[test]
    fn export_install_moves_a_connection_between_nsms() {
        let mut w = World::new(StackKind::Kernel);
        let ls = w.remote.socket();
        w.remote.bind(ls, SockAddr::new(0, 7)).unwrap();
        w.remote.listen(ls, 8).unwrap();
        w.submit(req(OpType::SocketCreate, 5));
        w.submit(req(OpType::Connect, 5).with_op_data(SockAddr::new(REMOTE_IP, 7).pack()));
        w.run(10);
        let payload = b"first half ".to_vec();
        let handle = w.region.alloc_and_write(&payload).unwrap();
        w.submit(req(OpType::Send, 5).with_data(handle, payload.len() as u32));
        w.run(10);
        let _ = w.responses();

        let (snap, pending, outstanding) = w.nsm.export_conn(VmId(1), SocketId(5)).unwrap();
        assert_eq!(snap.remote, SockAddr::new(REMOTE_IP, 7));
        assert!(!w.nsm.serves_vm(VmId(1)) || w.nsm.export_conn(VmId(1), SocketId(5)).is_err());

        // Second NSM on the same switch adopts the port address (the
        // "fabric reroute" of a single-switch world) and the connection.
        let new_port = w.switch.attach(NSM_IP);
        let (guest_end2, nsm_end2) = queue_set_pair(1024);
        let device2 = NkDevice::new(vec![nsm_end2], WakeState::new());
        let service2 = ServiceLib::new(NsmId(2), device2, 8);
        let stack2 = TcpStack::new(StackConfig::new(0x0A00_0099), new_port);
        let mut nsm2 = Nsm::new(NsmId(2), StackKind::Kernel, service2, stack2);
        nsm2.add_vm(VmId(1), w.region.clone());
        let conn = nk_types::ConnSnapshot {
            guest_sock: SocketId(5),
            vm_queue_set: QueueSetId(0),
            tcp: snap,
            pending_send: pending,
            rx_outstanding: outstanding,
            guest: nk_types::GuestSockSnapshot {
                id: SocketId(5),
                queue_set: QueueSetId(0),
                local: None,
                remote: Some(SockAddr::new(REMOTE_IP, 7)),
                peer_closed: false,
                send_buf_cap: 64 * 1024,
                send_reserved: 0,
                rx_bytes: Vec::new(),
                interest: 0,
            },
        };
        nsm2.install_conn(VmId(1), &conn, 0).unwrap();

        // The guest keeps sending through the new NSM's queue pair.
        let mut guest_end2 = guest_end2;
        let second = b"second half".to_vec();
        let handle = w.region.alloc_and_write(&second).unwrap();
        guest_end2
            .submit(req(OpType::Send, 5).with_data(handle, second.len() as u32))
            .unwrap();
        for _ in 0..10 {
            w.now += 100_000;
            nsm2.tick(w.now);
            w.remote.tick(w.now);
            w.switch.step(w.now);
        }
        let (conn_sock, _) = w.remote.accept(ls).unwrap();
        let mut buf = [0u8; 64];
        let mut got = Vec::new();
        while let Ok(n) = w.remote.recv(conn_sock, &mut buf) {
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, b"first half second half");
    }

    #[test]
    fn fair_share_nsm_builds_with_vm_windows() {
        let w = World::new(StackKind::FairShare);
        assert_eq!(w.nsm.kind(), StackKind::FairShare);
    }

    #[test]
    fn unsupported_ops_are_rejected_gracefully() {
        let mut w = World::new(StackKind::Kernel);
        w.submit(req(OpType::SocketCreate, 1));
        w.submit(req(OpType::GetSockOpt, 1));
        w.run(1);
        let resp = w.responses();
        assert!(resp
            .iter()
            .any(|n| n.op == OpType::GetSockOptComplete && !n.result().is_ok()));
    }
}
