//! Per-VM shared congestion windows for the fair-sharing NSM (use case 2).

use nk_netstack::cc::{CongestionControl, SharedVmWindow, VmSharedCc};
use nk_types::VmId;
use std::collections::BTreeMap;

/// Registry handing out one [`SharedVmWindow`] per VM.
///
/// The fair-share NSM consults the registry whenever it opens a connection on
/// behalf of a VM, so all of that VM's flows share a single congestion window
/// regardless of how many connections or destinations it uses (paper §6.2,
/// Figure 9). Ordered like every other datapath map, per the workspace
/// determinism rule: iteration order must not depend on hash seeds.
#[derive(Default)]
pub struct VmWindowRegistry {
    windows: BTreeMap<VmId, SharedVmWindow>,
}

impl VmWindowRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared window of `vm`, created on first use.
    pub fn window(&mut self, vm: VmId) -> SharedVmWindow {
        self.windows.entry(vm).or_default().clone()
    }

    /// Build a congestion-control instance joining `vm`'s shared window.
    pub fn cc_for(&mut self, vm: VmId) -> Box<dyn CongestionControl> {
        Box::new(VmSharedCc::new(self.window(vm)))
    }

    /// Number of VMs with a registered window.
    pub fn vms(&self) -> usize {
        self.windows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nk_types::constants::MSS;

    #[test]
    fn same_vm_shares_a_window_different_vms_do_not() {
        let mut reg = VmWindowRegistry::new();
        let mut a1 = reg.cc_for(VmId(1));
        let a2 = reg.cc_for(VmId(1));
        let b1 = reg.cc_for(VmId(2));
        assert_eq!(reg.vms(), 2);

        // Grow VM 1's shared window through flow a1; flow a2 sees the growth,
        // VM 2's flow does not.
        for _ in 0..200 {
            a1.on_ack(MSS, 0, false, 0);
        }
        assert!(a2.cwnd() > b1.cwnd());
    }

    #[test]
    fn window_is_stable_across_lookups() {
        let mut reg = VmWindowRegistry::new();
        let w1 = reg.window(VmId(7));
        let w2 = reg.window(VmId(7));
        assert_eq!(w1.total_cwnd(), w2.total_cwnd());
        assert_eq!(reg.vms(), 1);
    }
}
