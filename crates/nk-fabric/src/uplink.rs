//! The host↔ToR uplink: a pair of wait-free SPSC frame channels.
//!
//! A clustered host's switch and the top-of-rack switch used to share one
//! mutex-guarded [`crate::port::Port`]. With the cluster datapath sharded
//! across worker threads, the uplink is the *only* cross-shard edge — the
//! host side lives on a worker, the ToR side on the coordinator — so it is
//! built from two [`nk_queue::unbounded()`] SPSC queues instead: each
//! direction has exactly one producer (the host's TX, the ToR's delivery)
//! and one consumer (the ToR's ingress drain, the host's RX), no locks, and
//! pushes that can never fail (dropping a frame on overflow would make
//! behaviour depend on shard timing).
//!
//! The coordinator drains every uplink at the round barrier in route order —
//! host trunks sort by prefix, i.e. ascending `HostId` — which is what keeps
//! cross-shard frame merging deterministic for any thread count.

use crate::port::Frame;
use nk_queue::unbounded::{unbounded, UnboundedConsumer, UnboundedProducer};

/// The host-switch side of an uplink trunk: frames with no local destination
/// leave through [`HostUplink::send`]; ToR deliveries arrive via
/// [`HostUplink::recv`]. Owned by exactly one host (one shard).
pub struct HostUplink<P> {
    to_tor: UnboundedProducer<Frame<P>>,
    from_tor: UnboundedConsumer<Frame<P>>,
    prefix: u32,
}

/// The ToR side of the same trunk: [`TorUplink::drain_into`] collects the
/// host's outbound frames at the round barrier, [`TorUplink::deliver`]
/// pushes frames down towards the host. Owned by the coordinator.
pub struct TorUplink<P> {
    from_host: UnboundedConsumer<Frame<P>>,
    to_host: UnboundedProducer<Frame<P>>,
}

/// Create the two ends of one uplink trunk for the address block at
/// `prefix`.
pub fn uplink_pair<P>(prefix: u32) -> (HostUplink<P>, TorUplink<P>) {
    let (to_tor, from_host) = unbounded();
    let (to_host, from_tor) = unbounded();
    (
        HostUplink {
            to_tor,
            from_tor,
            prefix,
        },
        TorUplink { from_host, to_host },
    )
}

impl<P> HostUplink<P> {
    /// The trunk's (masked) address block, for diagnostics.
    pub fn prefix(&self) -> u32 {
        self.prefix
    }

    /// Queue a frame towards the ToR. Wait-free, never fails.
    pub fn send(&mut self, frame: Frame<P>) {
        self.to_tor.push(frame);
    }

    /// Take one frame the ToR delivered, if any.
    pub fn recv(&mut self) -> Option<Frame<P>> {
        self.from_tor.pop()
    }

    /// Number of delivered frames waiting.
    pub fn rx_pending(&self) -> usize {
        self.from_tor.len()
    }

    /// Number of outbound frames not yet drained by the ToR.
    pub fn tx_pending(&self) -> usize {
        self.to_tor.len()
    }
}

impl<P> TorUplink<P> {
    /// Drain every frame the host sent, appending to `out`; returns how
    /// many were drained.
    pub fn drain_into(&mut self, out: &mut Vec<Frame<P>>) -> usize {
        self.from_host.drain_into(out)
    }

    /// Deliver a frame down towards the host. Wait-free, never fails.
    pub fn deliver(&mut self, frame: Frame<P>) {
        self.to_host.push(frame);
    }

    /// Number of frames awaiting pickup from the host.
    pub fn pending_from_host(&self) -> usize {
        self.from_host.len()
    }

    /// Number of frames delivered but not yet received by the host.
    pub fn pending_to_host(&self) -> usize {
        self.to_host.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(dst: u32, tag: u32) -> Frame<u32> {
        Frame {
            src: 1,
            dst,
            flow_hash: tag as u64,
            wire_bytes: 100,
            payload: tag,
        }
    }

    #[test]
    fn frames_flow_both_directions_in_order() {
        let (mut host, mut tor) = uplink_pair::<u32>(0x0A01_0000);
        assert_eq!(host.prefix(), 0x0A01_0000);
        host.send(frame(0x0A02_0001, 1));
        host.send(frame(0x0A02_0001, 2));
        assert_eq!(host.tx_pending(), 2);
        let mut out = Vec::new();
        assert_eq!(tor.drain_into(&mut out), 2);
        assert_eq!(out[0].payload, 1);
        assert_eq!(out[1].payload, 2);
        assert_eq!(tor.pending_from_host(), 0);

        tor.deliver(frame(0x0A01_0001, 3));
        assert_eq!(tor.pending_to_host(), 1);
        assert_eq!(host.rx_pending(), 1);
        assert_eq!(host.recv().unwrap().payload, 3);
        assert!(host.recv().is_none());
    }

    /// The two directions are independent queues: draining one never
    /// disturbs the other.
    #[test]
    fn directions_are_independent() {
        let (mut host, mut tor) = uplink_pair::<u32>(0);
        host.send(frame(9, 1));
        tor.deliver(frame(1, 2));
        assert_eq!(host.recv().unwrap().payload, 2);
        let mut out = Vec::new();
        assert_eq!(tor.drain_into(&mut out), 1);
        assert_eq!(out[0].payload, 1);
    }
}
