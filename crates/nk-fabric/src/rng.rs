//! Deterministic randomness for the fabric.
//!
//! Loss and reordering decisions must be reproducible across runs and
//! platforms. The generator itself now lives in `nk-sim` (the deterministic
//! substrate shared by the whole workspace); this module re-exports it so
//! existing `nk_fabric::rng::SplitMix64` users keep working.

pub use nk_sim::rng::SplitMix64;
