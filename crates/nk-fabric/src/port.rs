//! Ports: vNIC attachment points on the virtual switch.

// nk-lint: allow-file(cross-shard-locks) — a port's two handles (endpoint +
// switch) are always polled by the same lane, and the hub drains switch
// sides serially at the round barrier; the Mutexes provide interior
// mutability for the paired handles, never a cross-shard channel. Cross-lane
// traffic goes over the SPSC `uplink_pair`/`share_edge` only.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// A frame travelling through the fabric.
///
/// The payload type is generic so the fabric can carry the TCP segments of
/// the network stack (or anything else) without depending on it. `wire_bytes`
/// is used for rate limiting and throughput accounting and should include
/// header overhead.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame<P> {
    /// Source address (the IP of the sending endpoint).
    pub src: u32,
    /// Destination address used by the switch to pick the output port.
    pub dst: u32,
    /// Hash identifying the flow, used by RSS to pick a NIC queue.
    pub flow_hash: u64,
    /// Size of the frame on the wire, in bytes.
    pub wire_bytes: usize,
    /// Opaque payload.
    pub payload: P,
}

struct Shared<P> {
    /// Frames queued by the endpoint, awaiting pickup by the switch.
    tx: Mutex<VecDeque<Frame<P>>>,
    /// Frames delivered by the switch, awaiting pickup by the endpoint.
    rx: Mutex<VecDeque<Frame<P>>>,
}

/// A bidirectional port. Cloning yields another handle to the same port (the
/// switch keeps one clone, the endpoint keeps the other).
pub struct Port<P> {
    shared: Arc<Shared<P>>,
    addr: u32,
}

impl<P> Clone for Port<P> {
    fn clone(&self) -> Self {
        Port {
            shared: Arc::clone(&self.shared),
            addr: self.addr,
        }
    }
}

impl<P> Port<P> {
    /// Create a port for the endpoint with address `addr`.
    pub fn new(addr: u32) -> Self {
        Port {
            shared: Arc::new(Shared {
                tx: Mutex::new(VecDeque::new()),
                rx: Mutex::new(VecDeque::new()),
            }),
            addr,
        }
    }

    /// Address of the endpoint attached to this port.
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// Endpoint side: queue a frame for transmission.
    pub fn send(&self, frame: Frame<P>) {
        self.shared.tx.lock().unwrap().push_back(frame);
    }

    /// Endpoint side: take one delivered frame, if any.
    pub fn recv(&self) -> Option<Frame<P>> {
        self.shared.rx.lock().unwrap().pop_front()
    }

    /// Endpoint side: number of delivered frames waiting.
    pub fn rx_pending(&self) -> usize {
        self.shared.rx.lock().unwrap().len()
    }

    /// Switch side: drain up to `max` frames queued for transmission.
    pub fn drain_tx(&self, max: usize) -> Vec<Frame<P>> {
        let mut out = Vec::new();
        self.drain_tx_into(max, &mut out);
        out
    }

    /// Switch side: drain up to `max` queued frames, appending them to `out`
    /// (no per-call allocation). Returns how many were drained.
    pub fn drain_tx_into(&self, max: usize, out: &mut Vec<Frame<P>>) -> usize {
        let mut q = self.shared.tx.lock().unwrap();
        let n = max.min(q.len());
        out.extend(q.drain(..n));
        n
    }

    /// Switch side: number of frames awaiting pickup.
    pub fn tx_pending(&self) -> usize {
        self.shared.tx.lock().unwrap().len()
    }

    /// Switch side: deliver a frame to the endpoint.
    pub fn deliver(&self, frame: Frame<P>) {
        self.shared.rx.lock().unwrap().push_back(frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(dst: u32, tag: u32) -> Frame<u32> {
        Frame {
            src: 1,
            dst,
            flow_hash: tag as u64,
            wire_bytes: 100,
            payload: tag,
        }
    }

    #[test]
    fn send_and_drain() {
        let p: Port<u32> = Port::new(10);
        assert_eq!(p.addr(), 10);
        p.send(frame(2, 1));
        p.send(frame(2, 2));
        assert_eq!(p.tx_pending(), 2);
        let drained = p.drain_tx(1);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].payload, 1);
        assert_eq!(p.tx_pending(), 1);
        assert_eq!(p.drain_tx(10).len(), 1);
    }

    #[test]
    fn deliver_and_recv_preserve_order() {
        let p: Port<u32> = Port::new(10);
        p.deliver(frame(10, 7));
        p.deliver(frame(10, 8));
        assert_eq!(p.rx_pending(), 2);
        assert_eq!(p.recv().unwrap().payload, 7);
        assert_eq!(p.recv().unwrap().payload, 8);
        assert!(p.recv().is_none());
    }

    #[test]
    fn clones_share_queues() {
        let endpoint: Port<u32> = Port::new(10);
        let switch_side = endpoint.clone();
        endpoint.send(frame(2, 5));
        assert_eq!(switch_side.drain_tx(10).len(), 1);
        switch_side.deliver(frame(10, 6));
        assert_eq!(endpoint.recv().unwrap().payload, 6);
    }
}
