//! Multi-queue NIC front-end with receive-side scaling (RSS).
//!
//! "As NIC speed in cloud evolves from 40G/50G to 100G and higher, the NSM
//! has to use multiple cores for the network stack to achieve line rate"
//! (paper §3). Multi-core stacks therefore spread incoming frames over
//! per-core RX queues by hashing the flow, exactly like hardware RSS. The
//! mTCP port in §6.3 even hit an RSS-key driver bug on the testbed — in this
//! reproduction the RSS hash is symmetric by construction, so both directions
//! of a flow land on the same queue.

use crate::port::{Frame, Port};
use std::collections::VecDeque;

/// Symmetric flow hash: both directions of a connection map to the same
/// value, which is what a symmetric RSS key achieves on real NICs.
pub fn symmetric_flow_hash(ip_a: u32, port_a: u16, ip_b: u32, port_b: u16) -> u64 {
    // XOR makes the hash order-independent; multiply spreads the bits.
    let ips = (ip_a ^ ip_b) as u64;
    let ports = (port_a ^ port_b) as u64;
    (ips.wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ (ports.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
}

/// A NIC exposing one TX path and `n` RX queues fed by RSS.
pub struct MultiQueueNic<P> {
    port: Port<P>,
    rx_queues: Vec<VecDeque<Frame<P>>>,
}

impl<P> MultiQueueNic<P> {
    /// Wrap a switch port into a NIC with `queues` RX queues.
    ///
    /// # Panics
    ///
    /// Panics if `queues` is zero.
    pub fn new(port: Port<P>, queues: usize) -> Self {
        assert!(queues > 0, "a NIC needs at least one RX queue");
        MultiQueueNic {
            port,
            rx_queues: (0..queues).map(|_| VecDeque::new()).collect(),
        }
    }

    /// Number of RX queues.
    pub fn queues(&self) -> usize {
        self.rx_queues.len()
    }

    /// Address of the underlying port.
    pub fn addr(&self) -> u32 {
        self.port.addr()
    }

    /// Transmit a frame.
    pub fn send(&self, frame: Frame<P>) {
        self.port.send(frame);
    }

    /// Pull frames from the port and distribute them to RX queues by RSS.
    /// Returns the number of frames distributed.
    pub fn poll_rx(&mut self) -> usize {
        let mut n = 0;
        while let Some(f) = self.port.recv() {
            let q = (f.flow_hash % self.rx_queues.len() as u64) as usize;
            self.rx_queues[q].push_back(f);
            n += 1;
        }
        n
    }

    /// Take one frame from RX queue `queue`.
    pub fn recv_on(&mut self, queue: usize) -> Option<Frame<P>> {
        self.rx_queues.get_mut(queue)?.pop_front()
    }

    /// Number of frames waiting on RX queue `queue`.
    pub fn rx_pending(&self, queue: usize) -> usize {
        self.rx_queues.get(queue).map_or(0, |q| q.len())
    }

    /// Total frames waiting across all RX queues.
    pub fn rx_pending_total(&self) -> usize {
        self.rx_queues.iter().map(|q| q.len()).sum()
    }

    /// Reconfigure the number of RX queues (e.g. when vCPUs are added to an
    /// NSM). Pending frames are redistributed according to the new queue
    /// count.
    pub fn set_queues(&mut self, queues: usize) {
        assert!(queues > 0, "a NIC needs at least one RX queue");
        let pending: Vec<Frame<P>> = self
            .rx_queues
            .iter_mut()
            .flat_map(|q| q.drain(..))
            .collect();
        self.rx_queues = (0..queues).map(|_| VecDeque::new()).collect();
        for f in pending {
            let q = (f.flow_hash % self.rx_queues.len() as u64) as usize;
            self.rx_queues[q].push_back(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(hash: u64, tag: u32) -> Frame<u32> {
        Frame {
            src: 1,
            dst: 2,
            flow_hash: hash,
            wire_bytes: 100,
            payload: tag,
        }
    }

    #[test]
    fn rss_hash_is_symmetric() {
        let fwd = symmetric_flow_hash(0x0A000001, 80, 0x0A000002, 5555);
        let rev = symmetric_flow_hash(0x0A000002, 5555, 0x0A000001, 80);
        assert_eq!(fwd, rev);
        let other = symmetric_flow_hash(0x0A000001, 81, 0x0A000002, 5555);
        assert_ne!(fwd, other);
    }

    #[test]
    fn rss_spreads_flows_across_queues() {
        let port: Port<u32> = Port::new(2);
        let mut nic = MultiQueueNic::new(port.clone(), 4);
        for flow in 0..64u64 {
            port.deliver(frame(
                symmetric_flow_hash(1, 1000 + flow as u16, 2, 80),
                flow as u32,
            ));
        }
        assert_eq!(nic.poll_rx(), 64);
        let counts: Vec<usize> = (0..4).map(|q| nic.rx_pending(q)).collect();
        assert_eq!(counts.iter().sum::<usize>(), 64);
        assert!(counts.iter().all(|&c| c > 4), "unbalanced RSS: {counts:?}");
    }

    #[test]
    fn same_flow_stays_on_one_queue() {
        let port: Port<u32> = Port::new(2);
        let mut nic = MultiQueueNic::new(port.clone(), 8);
        let h = symmetric_flow_hash(1, 1234, 2, 80);
        for i in 0..10 {
            port.deliver(frame(h, i));
        }
        nic.poll_rx();
        let busy: Vec<usize> = (0..8).filter(|&q| nic.rx_pending(q) > 0).collect();
        assert_eq!(busy.len(), 1);
        assert_eq!(nic.rx_pending(busy[0]), 10);
        // Frames come out in order.
        assert_eq!(nic.recv_on(busy[0]).unwrap().payload, 0);
        assert_eq!(nic.recv_on(busy[0]).unwrap().payload, 1);
    }

    #[test]
    fn requeueing_preserves_frames() {
        let port: Port<u32> = Port::new(2);
        let mut nic = MultiQueueNic::new(port.clone(), 2);
        for flow in 0..16u64 {
            port.deliver(frame(flow, flow as u32));
        }
        nic.poll_rx();
        assert_eq!(nic.rx_pending_total(), 16);
        nic.set_queues(5);
        assert_eq!(nic.queues(), 5);
        assert_eq!(nic.rx_pending_total(), 16);
    }

    #[test]
    #[should_panic(expected = "at least one RX queue")]
    fn zero_queues_panics() {
        let port: Port<u32> = Port::new(2);
        let _ = MultiQueueNic::new(port, 0);
    }
}
