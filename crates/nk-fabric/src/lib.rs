//! The virtual network fabric.
//!
//! The paper's testbed connects NSMs to a vSwitch (software or SR-IOV
//! embedded) and then to 100 G physical NICs (§4, Figure 2). This crate
//! provides the equivalent substrate for the reproduction:
//!
//! * [`port`] — a bidirectional packet port (vNIC attachment point);
//! * [`link`] — rate limiting, propagation latency, loss and reordering
//!   applied to a stream of frames;
//! * [`switch`] — the virtual switch connecting ports by destination address,
//!   with an optional uplink into a top-of-rack switch;
//! * [`tor`] — the prefix-routed top-of-rack switch joining host uplinks
//!   into one cluster fabric;
//! * [`uplink`] — the host↔ToR trunk as a pair of wait-free SPSC channels,
//!   the cross-thread edge between a host shard and the coordinator;
//! * [`share`] — the share-lane → host-hub report channel, the cross-thread
//!   edge of intra-host sharding;
//! * [`nic`] — a multi-queue NIC front-end with receive-side scaling (RSS),
//!   used by multi-core stacks to spread connections over queues;
//! * [`rng`] — a tiny deterministic PRNG so loss/reordering are reproducible.
//!
//! The fabric is generic over the frame payload so it carries the TCP
//! segments of `nk-netstack` without a dependency cycle.

pub mod link;
pub mod nic;
pub mod port;
pub mod rng;
pub mod share;
pub mod switch;
pub mod tor;
pub mod uplink;

pub use link::{Link, LinkConfig};
pub use nic::MultiQueueNic;
pub use port::{Frame, Port};
pub use share::{share_edge, ShareRx, ShareTx};
pub use switch::{UplinkStats, VirtualSwitch};
pub use tor::TorSwitch;
pub use uplink::{uplink_pair, HostUplink, TorUplink};
