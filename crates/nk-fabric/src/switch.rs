//! The virtual switch connecting ports.
//!
//! The switch plays the role of the paper's vSwitch / SR-IOV embedded switch
//! (Figure 2): every vNIC (NSM port, baseline VM port, remote host port)
//! attaches to it and frames are forwarded by destination address. Each
//! attached port gets an egress [`Link`] so per-port rate caps, latency and
//! loss can be configured.

use crate::link::{Link, LinkConfig, LinkStats};
use crate::port::{Frame, Port};
use std::collections::BTreeMap;

/// A virtual switch over frames with payload `P`.
///
/// Ports and links live in `BTreeMap`s so every forwarding pass visits them
/// in address order: the whole fabric stays deterministic across runs, which
/// the seeded fault-injection scenarios depend on.
pub struct VirtualSwitch<P> {
    ports: BTreeMap<u32, Port<P>>,
    /// Egress link (impairments applied on the way *out* of the switch
    /// towards the destination port), keyed by destination address.
    links: BTreeMap<u32, Link<P>>,
    default_link: LinkConfig,
    /// Frames dropped because the destination is unknown.
    unroutable: u64,
    seed: u64,
    /// Reusable frame buffer for the ingress/egress drains (hot path).
    scratch: Vec<Frame<P>>,
}

impl<P> VirtualSwitch<P> {
    /// A switch whose ports get ideal egress links by default.
    pub fn new() -> Self {
        Self::with_default_link(LinkConfig::ideal())
    }

    /// A switch applying `default_link` to every port unless overridden.
    pub fn with_default_link(default_link: LinkConfig) -> Self {
        VirtualSwitch {
            ports: BTreeMap::new(),
            links: BTreeMap::new(),
            default_link,
            unroutable: 0,
            seed: 0x5EED,
            scratch: Vec::new(),
        }
    }

    /// Attach a new endpoint with address `addr`; returns the endpoint's port
    /// handle. Re-attaching an existing address replaces the old port.
    pub fn attach(&mut self, addr: u32) -> Port<P> {
        self.attach_with_link(addr, self.default_link)
    }

    /// Attach a new endpoint with a specific egress link configuration.
    pub fn attach_with_link(&mut self, addr: u32, link: LinkConfig) -> Port<P> {
        let port = Port::new(addr);
        self.ports.insert(addr, port.clone());
        self.seed = self
            .seed
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(addr as u64);
        self.links.insert(addr, Link::new(link, self.seed));
        port
    }

    /// Detach an endpoint.
    pub fn detach(&mut self, addr: u32) {
        self.ports.remove(&addr);
        self.links.remove(&addr);
    }

    /// Reconfigure the egress link towards `addr` mid-flight (fault
    /// injection: rate, loss, latency or reordering changes under live
    /// traffic). In-flight frames keep their original delivery schedule.
    pub fn set_link_config(&mut self, addr: u32, config: LinkConfig, now_ns: u64) -> bool {
        match self.links.get_mut(&addr) {
            Some(link) => {
                link.set_config(config, now_ns);
                true
            }
            None => false,
        }
    }

    /// Number of attached ports.
    pub fn ports(&self) -> usize {
        self.ports.len()
    }

    /// Forward frames: drain every port's TX queue, push frames through the
    /// destination's egress link, and deliver everything whose time has come.
    ///
    /// Returns the number of frames delivered to ports during this call.
    pub fn step(&mut self, now_ns: u64) -> usize {
        // Ingress: collect from all ports, in address order, through the
        // reusable scratch buffer (no per-port allocation).
        let mut scratch = std::mem::take(&mut self.scratch);
        for port in self.ports.values() {
            scratch.clear();
            port.drain_tx_into(usize::MAX, &mut scratch);
            for f in scratch.drain(..) {
                match self.links.get_mut(&f.dst) {
                    Some(link) if self.ports.contains_key(&f.dst) => link.offer(f, now_ns),
                    _ => self.unroutable += 1,
                }
            }
        }
        // Egress: deliver matured frames.
        let mut delivered = 0;
        for (addr, link) in self.links.iter_mut() {
            if let Some(port) = self.ports.get(addr) {
                scratch.clear();
                link.drain_deliverable(now_ns, &mut scratch);
                for f in scratch.drain(..) {
                    port.deliver(f);
                    delivered += 1;
                }
            }
        }
        self.scratch = scratch;
        delivered
    }

    /// Frames dropped because no port matched the destination address.
    pub fn unroutable(&self) -> u64 {
        self.unroutable
    }

    /// Statistics of the egress link towards `addr`.
    pub fn link_stats(&self, addr: u32) -> Option<LinkStats> {
        self.links.get(&addr).map(|l| l.stats())
    }
}

impl<P> nk_sim::Pollable for VirtualSwitch<P> {
    /// One forwarding pass: ingress collection plus delivery of every frame
    /// whose link latency has elapsed at `now_ns`.
    fn poll(&mut self, now_ns: u64) -> usize {
        self.step(now_ns)
    }
}

impl<P> Default for VirtualSwitch<P> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::Frame;

    fn frame(src: u32, dst: u32, tag: u32) -> Frame<u32> {
        Frame {
            src,
            dst,
            flow_hash: tag as u64,
            wire_bytes: 100,
            payload: tag,
        }
    }

    #[test]
    fn forwards_between_two_ports() {
        let mut sw: VirtualSwitch<u32> = VirtualSwitch::new();
        let a = sw.attach(1);
        let b = sw.attach(2);
        a.send(frame(1, 2, 11));
        b.send(frame(2, 1, 22));
        let delivered = sw.step(0);
        assert_eq!(delivered, 2);
        assert_eq!(b.recv().unwrap().payload, 11);
        assert_eq!(a.recv().unwrap().payload, 22);
    }

    #[test]
    fn unknown_destination_is_counted() {
        let mut sw: VirtualSwitch<u32> = VirtualSwitch::new();
        let a = sw.attach(1);
        a.send(frame(1, 99, 1));
        sw.step(0);
        assert_eq!(sw.unroutable(), 1);
    }

    #[test]
    fn detach_stops_forwarding() {
        let mut sw: VirtualSwitch<u32> = VirtualSwitch::new();
        let a = sw.attach(1);
        let _b = sw.attach(2);
        sw.detach(2);
        assert_eq!(sw.ports(), 1);
        a.send(frame(1, 2, 1));
        sw.step(0);
        assert_eq!(sw.unroutable(), 1);
    }

    #[test]
    fn per_port_latency_applies_on_egress() {
        let mut sw: VirtualSwitch<u32> = VirtualSwitch::new();
        let a = sw.attach(1);
        let b = sw.attach_with_link(2, LinkConfig::ideal().with_latency_us(100));
        a.send(frame(1, 2, 5));
        sw.step(0);
        assert_eq!(b.rx_pending(), 0);
        sw.step(100_000);
        assert_eq!(b.recv().unwrap().payload, 5);
    }

    /// Degrading a port's egress link mid-flight affects only frames
    /// forwarded after the change; already-queued frames still arrive.
    #[test]
    fn link_reconfiguration_applies_mid_flight() {
        let mut sw: VirtualSwitch<u32> = VirtualSwitch::new();
        let a = sw.attach(1);
        let b = sw.attach_with_link(2, LinkConfig::ideal().with_latency_us(10));
        a.send(frame(1, 2, 1));
        sw.step(0); // frame admitted at 10 µs latency
        assert!(sw.set_link_config(2, LinkConfig::ideal().with_loss(1.0), 0));
        a.send(frame(1, 2, 2)); // hits the fully lossy link
        sw.step(10_000);
        assert_eq!(b.recv().unwrap().payload, 1, "in-flight frame survives");
        assert!(b.recv().is_none(), "post-change frame was dropped");
        assert_eq!(sw.link_stats(2).unwrap().dropped, 1);
        assert!(!sw.set_link_config(99, LinkConfig::ideal(), 0));
    }

    #[test]
    fn link_stats_visible_per_destination() {
        let mut sw: VirtualSwitch<u32> = VirtualSwitch::new();
        let a = sw.attach(1);
        let _b = sw.attach(2);
        a.send(frame(1, 2, 1));
        a.send(frame(1, 2, 2));
        sw.step(0);
        let stats = sw.link_stats(2).unwrap();
        assert_eq!(stats.delivered, 2);
        assert!(sw.link_stats(42).is_none());
    }
}
