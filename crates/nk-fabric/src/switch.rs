//! The virtual switch connecting ports.
//!
//! The switch plays the role of the paper's vSwitch / SR-IOV embedded switch
//! (Figure 2): every vNIC (NSM port, baseline VM port, remote host port)
//! attaches to it and frames are forwarded by destination address. Each
//! attached port gets an egress [`Link`] so per-port rate caps, latency and
//! loss can be configured.

use crate::link::{Link, LinkConfig, LinkStats};
use crate::port::{Frame, Port};
use crate::uplink::HostUplink;
use std::collections::BTreeMap;

/// Traffic counters of a switch's uplink towards the top-of-rack switch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UplinkStats {
    /// Frames sent out the uplink (no local port matched).
    pub tx_frames: u64,
    /// Wire bytes sent out the uplink.
    pub tx_bytes: u64,
    /// Frames received from the uplink and forwarded locally.
    pub rx_frames: u64,
    /// Wire bytes received from the uplink.
    pub rx_bytes: u64,
}

/// A virtual switch over frames with payload `P`.
///
/// Ports and links live in `BTreeMap`s so every forwarding pass visits them
/// in address order: the whole fabric stays deterministic across runs, which
/// the seeded fault-injection scenarios depend on.
pub struct VirtualSwitch<P> {
    ports: BTreeMap<u32, Port<P>>,
    /// Egress link (impairments applied on the way *out* of the switch
    /// towards the destination port), keyed by destination address.
    links: BTreeMap<u32, Link<P>>,
    default_link: LinkConfig,
    /// Frames dropped because the destination is unknown.
    unroutable: u64,
    /// Uplink towards a top-of-rack switch, when this switch is one host of
    /// a cluster: frames with no local destination leave through it instead
    /// of being dropped, and frames the ToR delivers re-enter through it.
    /// This is the host side of the trunk's SPSC channel pair — the only
    /// edge that crosses a shard boundary when the cluster runs sharded.
    uplink: Option<HostUplink<P>>,
    /// Addresses under this `(prefix, mask)` are local to this switch even
    /// when no port currently owns them (a crashed vNIC): frames for them
    /// die here as unroutable instead of leaking out the uplink as phantom
    /// cross-host traffic.
    uplink_local: Option<(u32, u32)>,
    uplink_stats: UplinkStats,
    seed: u64,
    /// Reusable frame buffer for the ingress/egress drains (hot path).
    scratch: Vec<Frame<P>>,
}

impl<P> VirtualSwitch<P> {
    /// A switch whose ports get ideal egress links by default.
    pub fn new() -> Self {
        Self::with_default_link(LinkConfig::ideal())
    }

    /// A switch applying `default_link` to every port unless overridden.
    pub fn with_default_link(default_link: LinkConfig) -> Self {
        VirtualSwitch {
            ports: BTreeMap::new(),
            links: BTreeMap::new(),
            default_link,
            unroutable: 0,
            uplink: None,
            uplink_local: None,
            uplink_stats: UplinkStats::default(),
            seed: 0x5EED,
            scratch: Vec::new(),
        }
    }

    /// Wire this switch's uplink: `uplink` is the host side of a trunk the
    /// top-of-rack switch attached. From now on frames with no local port go
    /// out the uplink instead of being dropped, and frames the ToR delivers
    /// are forwarded to local ports on every step.
    pub fn set_uplink(&mut self, uplink: HostUplink<P>) {
        self.uplink = Some(uplink);
    }

    /// Like [`VirtualSwitch::set_uplink`], but frames for addresses inside
    /// `local_prefix/local_mask` never exit the uplink: that block belongs
    /// to this switch, so a destination in it with no port (a crashed vNIC)
    /// is a local drop, not cross-host traffic. A clustered host passes its
    /// own address block here.
    pub fn set_uplink_filtered(
        &mut self,
        uplink: HostUplink<P>,
        local_prefix: u32,
        local_mask: u32,
    ) {
        self.uplink = Some(uplink);
        self.uplink_local = Some((local_prefix & local_mask, local_mask));
    }

    /// True when an uplink is wired.
    pub fn has_uplink(&self) -> bool {
        self.uplink.is_some()
    }

    /// Traffic counters of the uplink (zero when none is wired).
    pub fn uplink_stats(&self) -> UplinkStats {
        self.uplink_stats
    }

    /// Attach a new endpoint with address `addr`; returns the endpoint's port
    /// handle. Re-attaching an existing address replaces the old port.
    pub fn attach(&mut self, addr: u32) -> Port<P> {
        self.attach_with_link(addr, self.default_link)
    }

    /// Attach a new endpoint with a specific egress link configuration.
    pub fn attach_with_link(&mut self, addr: u32, link: LinkConfig) -> Port<P> {
        let port = Port::new(addr);
        self.ports.insert(addr, port.clone());
        self.seed = self
            .seed
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(addr as u64);
        self.links.insert(addr, Link::new(link, self.seed));
        port
    }

    /// Attach `addr` as an *alias* of an existing port: frames for `addr`
    /// are delivered into `port`'s receive queue exactly like frames for
    /// the port's own address. A warm migration uses this to land a
    /// transplanted connection's original address on the destination NSM's
    /// vNIC — the stack demultiplexes by full 4-tuple, so one port can
    /// serve any number of adopted addresses.
    pub fn attach_alias(&mut self, addr: u32, port: Port<P>, link: LinkConfig) {
        self.ports.insert(addr, port);
        self.seed = self
            .seed
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(addr as u64);
        self.links.insert(addr, Link::new(link, self.seed));
    }

    /// Detach an endpoint.
    pub fn detach(&mut self, addr: u32) {
        self.ports.remove(&addr);
        self.links.remove(&addr);
    }

    /// Reconfigure the egress link towards `addr` mid-flight (fault
    /// injection: rate, loss, latency or reordering changes under live
    /// traffic). In-flight frames keep their original delivery schedule.
    pub fn set_link_config(&mut self, addr: u32, config: LinkConfig, now_ns: u64) -> bool {
        match self.links.get_mut(&addr) {
            Some(link) => {
                link.set_config(config, now_ns);
                true
            }
            None => false,
        }
    }

    /// Number of attached ports.
    pub fn ports(&self) -> usize {
        self.ports.len()
    }

    /// Forward frames: drain every port's TX queue (and the uplink's RX
    /// side), push frames through the destination's egress link, and deliver
    /// everything whose time has come. Frames with no local destination go
    /// out the uplink when one is wired, and are dropped otherwise.
    ///
    /// Returns the number of frames delivered to ports during this call.
    pub fn step(&mut self, now_ns: u64) -> usize {
        // Ingress: collect from all ports, in address order, through the
        // reusable scratch buffer (no per-port allocation). The uplink is
        // moved out for the duration of the pass: its SPSC ends need `&mut`
        // and the borrow must not overlap the link-map accesses.
        let mut uplink = self.uplink.take();
        let mut scratch = std::mem::take(&mut self.scratch);
        for port in self.ports.values() {
            scratch.clear();
            port.drain_tx_into(usize::MAX, &mut scratch);
            for f in scratch.drain(..) {
                let local_dead = self
                    .uplink_local
                    .is_some_and(|(prefix, mask)| f.dst & mask == prefix);
                match self.links.get_mut(&f.dst) {
                    Some(link) if self.ports.contains_key(&f.dst) => link.offer(f, now_ns),
                    _ => match &mut uplink {
                        Some(up) if !local_dead => {
                            self.uplink_stats.tx_frames += 1;
                            self.uplink_stats.tx_bytes += f.wire_bytes as u64;
                            up.send(f);
                        }
                        _ => self.unroutable += 1,
                    },
                }
            }
        }
        // Ingress from the uplink: frames the ToR delivered enter the local
        // forwarding plane through the destination's egress link, exactly
        // like locally originated traffic. Frames for addresses this host
        // does not own are dropped here — never bounced back out — so a
        // routing mistake cannot ping-pong between switch and ToR.
        if let Some(up) = &mut uplink {
            while let Some(f) = up.recv() {
                self.uplink_stats.rx_frames += 1;
                self.uplink_stats.rx_bytes += f.wire_bytes as u64;
                match self.links.get_mut(&f.dst) {
                    Some(link) if self.ports.contains_key(&f.dst) => link.offer(f, now_ns),
                    _ => self.unroutable += 1,
                }
            }
        }
        // Egress: deliver matured frames.
        let mut delivered = 0;
        for (addr, link) in self.links.iter_mut() {
            if let Some(port) = self.ports.get(addr) {
                scratch.clear();
                link.drain_deliverable(now_ns, &mut scratch);
                for f in scratch.drain(..) {
                    port.deliver(f);
                    delivered += 1;
                }
            }
        }
        self.uplink = uplink;
        self.scratch = scratch;
        delivered
    }

    /// Frames dropped because no port matched the destination address.
    pub fn unroutable(&self) -> u64 {
        self.unroutable
    }

    /// Statistics of the egress link towards `addr`.
    pub fn link_stats(&self, addr: u32) -> Option<LinkStats> {
        self.links.get(&addr).map(|l| l.stats())
    }
}

impl<P> nk_sim::Pollable for VirtualSwitch<P> {
    /// One forwarding pass: ingress collection plus delivery of every frame
    /// whose link latency has elapsed at `now_ns`.
    fn poll(&mut self, now_ns: u64) -> usize {
        self.step(now_ns)
    }
}

impl<P> Default for VirtualSwitch<P> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::Frame;

    fn frame(src: u32, dst: u32, tag: u32) -> Frame<u32> {
        Frame {
            src,
            dst,
            flow_hash: tag as u64,
            wire_bytes: 100,
            payload: tag,
        }
    }

    #[test]
    fn forwards_between_two_ports() {
        let mut sw: VirtualSwitch<u32> = VirtualSwitch::new();
        let a = sw.attach(1);
        let b = sw.attach(2);
        a.send(frame(1, 2, 11));
        b.send(frame(2, 1, 22));
        let delivered = sw.step(0);
        assert_eq!(delivered, 2);
        assert_eq!(b.recv().unwrap().payload, 11);
        assert_eq!(a.recv().unwrap().payload, 22);
    }

    #[test]
    fn unknown_destination_is_counted() {
        let mut sw: VirtualSwitch<u32> = VirtualSwitch::new();
        let a = sw.attach(1);
        a.send(frame(1, 99, 1));
        sw.step(0);
        assert_eq!(sw.unroutable(), 1);
    }

    #[test]
    fn detach_stops_forwarding() {
        let mut sw: VirtualSwitch<u32> = VirtualSwitch::new();
        let a = sw.attach(1);
        let _b = sw.attach(2);
        sw.detach(2);
        assert_eq!(sw.ports(), 1);
        a.send(frame(1, 2, 1));
        sw.step(0);
        assert_eq!(sw.unroutable(), 1);
    }

    #[test]
    fn per_port_latency_applies_on_egress() {
        let mut sw: VirtualSwitch<u32> = VirtualSwitch::new();
        let a = sw.attach(1);
        let b = sw.attach_with_link(2, LinkConfig::ideal().with_latency_us(100));
        a.send(frame(1, 2, 5));
        sw.step(0);
        assert_eq!(b.rx_pending(), 0);
        sw.step(100_000);
        assert_eq!(b.recv().unwrap().payload, 5);
    }

    /// Degrading a port's egress link mid-flight affects only frames
    /// forwarded after the change; already-queued frames still arrive.
    #[test]
    fn link_reconfiguration_applies_mid_flight() {
        let mut sw: VirtualSwitch<u32> = VirtualSwitch::new();
        let a = sw.attach(1);
        let b = sw.attach_with_link(2, LinkConfig::ideal().with_latency_us(10));
        a.send(frame(1, 2, 1));
        sw.step(0); // frame admitted at 10 µs latency
        assert!(sw.set_link_config(2, LinkConfig::ideal().with_loss(1.0), 0));
        a.send(frame(1, 2, 2)); // hits the fully lossy link
        sw.step(10_000);
        assert_eq!(b.recv().unwrap().payload, 1, "in-flight frame survives");
        assert!(b.recv().is_none(), "post-change frame was dropped");
        assert_eq!(sw.link_stats(2).unwrap().dropped, 1);
        assert!(!sw.set_link_config(99, LinkConfig::ideal(), 0));
    }

    /// With an uplink wired, unroutable frames leave through it instead of
    /// being dropped, and frames delivered into the uplink reach local
    /// ports; frames from the uplink for unknown addresses die here.
    #[test]
    fn uplink_carries_nonlocal_traffic_both_ways() {
        let mut sw: VirtualSwitch<u32> = VirtualSwitch::new();
        let a = sw.attach(1);
        let (host_end, mut tor_end) = crate::uplink::uplink_pair(0x10);
        sw.set_uplink(host_end);
        assert!(sw.has_uplink());

        // Outbound: no local port 99 → the frame exits via the uplink.
        a.send(frame(1, 99, 7));
        sw.step(0);
        assert_eq!(sw.unroutable(), 0);
        let mut out = Vec::new();
        assert_eq!(tor_end.drain_into(&mut out), 1);
        assert_eq!(out[0].payload, 7);
        assert_eq!(sw.uplink_stats().tx_frames, 1);
        assert_eq!(sw.uplink_stats().tx_bytes, 100);

        // Inbound: the ToR delivers a frame for local port 1.
        tor_end.deliver(frame(99, 1, 8));
        sw.step(0);
        assert_eq!(a.recv().unwrap().payload, 8);
        assert_eq!(sw.uplink_stats().rx_frames, 1);

        // Inbound for an unknown address is dropped, not bounced back.
        tor_end.deliver(frame(99, 42, 9));
        sw.step(0);
        assert_eq!(sw.unroutable(), 1);
        assert_eq!(
            tor_end.pending_from_host(),
            0,
            "no ping-pong back to the ToR"
        );
    }

    /// The filtered uplink keeps dead-local traffic local: a destination
    /// inside the switch's own block with no port is a drop here, never
    /// phantom cross-host traffic.
    #[test]
    fn uplink_filter_keeps_dead_local_traffic_local() {
        let mut sw: VirtualSwitch<u32> = VirtualSwitch::new();
        let a = sw.attach(0x0A01_0001);
        let (host_end, mut tor_end) = crate::uplink::uplink_pair(0x0A01_0000);
        sw.set_uplink_filtered(host_end, 0x0A01_0000, 0xFFFF_0000);
        a.send(frame(0x0A01_0001, 0x0A01_0099, 1)); // dead address in-block
        a.send(frame(0x0A01_0001, 0x0A02_0001, 2)); // genuinely remote
        sw.step(0);
        assert_eq!(sw.unroutable(), 1, "in-block miss dies locally");
        let mut out = Vec::new();
        assert_eq!(tor_end.drain_into(&mut out), 1);
        assert_eq!(out[0].payload, 2);
        assert_eq!(sw.uplink_stats().tx_frames, 1);
    }

    /// An alias delivers a second address into an existing port's queue.
    #[test]
    fn alias_delivers_into_the_adopting_port() {
        let mut sw: VirtualSwitch<u32> = VirtualSwitch::new();
        let a = sw.attach(1);
        let b = sw.attach(2);
        sw.attach_alias(99, b.clone(), LinkConfig::ideal());
        a.send(frame(1, 99, 42));
        a.send(frame(1, 2, 43));
        sw.step(0);
        let mut got = vec![b.recv().unwrap().payload, b.recv().unwrap().payload];
        got.sort_unstable();
        assert_eq!(
            got,
            vec![42, 43],
            "both the alias and the home address land"
        );
        sw.detach(99);
        a.send(frame(1, 99, 44));
        sw.step(0);
        assert_eq!(sw.unroutable(), 1);
    }

    #[test]
    fn link_stats_visible_per_destination() {
        let mut sw: VirtualSwitch<u32> = VirtualSwitch::new();
        let a = sw.attach(1);
        let _b = sw.attach(2);
        a.send(frame(1, 2, 1));
        a.send(frame(1, 2, 2));
        sw.step(0);
        let stats = sw.link_stats(2).unwrap();
        assert_eq!(stats.delivered, 2);
        assert!(sw.link_stats(42).is_none());
    }
}
