//! Link impairments: rate limiting, propagation delay, loss and reordering.

use crate::port::Frame;
use crate::rng::SplitMix64;
use nk_sim::TokenBucket;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Configuration of one link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkConfig {
    /// Line rate in Gbps; `None` means unconstrained.
    pub rate_gbps: Option<f64>,
    /// One-way propagation delay in microseconds.
    pub latency_us: u64,
    /// Probability of dropping a frame.
    pub loss: f64,
    /// Probability of delaying a frame by an extra jitter, causing
    /// reordering relative to later frames.
    pub reorder: f64,
    /// Extra delay applied to reordered frames, in microseconds.
    pub reorder_extra_us: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            rate_gbps: None,
            latency_us: 0,
            loss: 0.0,
            reorder: 0.0,
            reorder_extra_us: 50,
        }
    }
}

impl LinkConfig {
    /// An ideal link: no rate cap, no delay, no loss.
    pub fn ideal() -> Self {
        Self::default()
    }

    /// A link with a rate cap in Gbps.
    pub fn with_rate_gbps(mut self, gbps: f64) -> Self {
        self.rate_gbps = Some(gbps);
        self
    }

    /// A link with a one-way latency in microseconds.
    pub fn with_latency_us(mut self, us: u64) -> Self {
        self.latency_us = us;
        self
    }

    /// A link dropping frames with probability `loss`.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// A link reordering frames with probability `reorder`.
    pub fn with_reorder(mut self, reorder: f64) -> Self {
        self.reorder = reorder;
        self
    }
}

struct Pending<P> {
    deliver_at_ns: u64,
    seq: u64,
    frame: Frame<P>,
}

impl<P> PartialEq for Pending<P> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at_ns == other.deliver_at_ns && self.seq == other.seq
    }
}
impl<P> Eq for Pending<P> {}
impl<P> PartialOrd for Pending<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Pending<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at_ns, self.seq).cmp(&(other.deliver_at_ns, other.seq))
    }
}

/// Statistics of one link.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames accepted onto the link.
    pub sent: u64,
    /// Frames dropped by loss or rate policing.
    pub dropped: u64,
    /// Frames delivered out of the link.
    pub delivered: u64,
    /// Bytes delivered out of the link.
    pub delivered_bytes: u64,
    /// Mid-flight configuration changes applied (fault injection).
    pub reconfigurations: u64,
}

/// A unidirectional link applying [`LinkConfig`] impairments.
pub struct Link<P> {
    config: LinkConfig,
    bucket: Option<TokenBucket>,
    in_flight: BinaryHeap<Reverse<Pending<P>>>,
    rng: SplitMix64,
    seq: u64,
    stats: LinkStats,
}

impl<P> Link<P> {
    /// Create a link with the given configuration and RNG seed.
    pub fn new(config: LinkConfig, seed: u64) -> Self {
        Link {
            bucket: config.rate_gbps.map(|g| TokenBucket::for_gbps(g, 0)),
            config,
            in_flight: BinaryHeap::new(),
            rng: SplitMix64::new(seed),
            seq: 0,
            stats: LinkStats::default(),
        }
    }

    /// Offer a frame to the link at time `now_ns`. Frames beyond the rate cap
    /// or hit by loss are dropped (TCP sees them as congestion).
    pub fn offer(&mut self, frame: Frame<P>, now_ns: u64) {
        self.stats.sent += 1;
        if let Some(bucket) = &mut self.bucket {
            if !bucket.try_consume(frame.wire_bytes as f64, now_ns) {
                self.stats.dropped += 1;
                return;
            }
        }
        if self.rng.chance(self.config.loss) {
            self.stats.dropped += 1;
            return;
        }
        let mut delay_us = self.config.latency_us;
        if self.rng.chance(self.config.reorder) {
            delay_us += self.config.reorder_extra_us;
        }
        self.seq += 1;
        self.in_flight.push(Reverse(Pending {
            deliver_at_ns: now_ns + delay_us * 1_000,
            seq: self.seq,
            frame,
        }));
    }

    /// Reconfigure the link mid-flight (fault injection: rate, loss, latency
    /// or reordering changes under live traffic). Frames already in flight
    /// keep the delivery schedule they were admitted with — only frames
    /// offered after the change see the new impairments — so a
    /// reconfiguration can never drop or duplicate an admitted frame. The
    /// rate bucket is rebuilt empty of debt at `now_ns`.
    pub fn set_config(&mut self, config: LinkConfig, now_ns: u64) {
        self.bucket = config.rate_gbps.map(|g| TokenBucket::for_gbps(g, now_ns));
        self.config = config;
        self.stats.reconfigurations += 1;
    }

    /// Pop every frame whose delivery time has arrived.
    ///
    /// Allocates a fresh `Vec` per call; the switch's forwarding loop uses
    /// [`Link::drain_deliverable`] with a reused buffer instead.
    pub fn deliverable(&mut self, now_ns: u64) -> Vec<Frame<P>> {
        let mut out = Vec::new();
        self.drain_deliverable(now_ns, &mut out);
        out
    }

    /// Append every frame whose delivery time has arrived to `out`,
    /// returning how many were drained.
    pub fn drain_deliverable(&mut self, now_ns: u64, out: &mut Vec<Frame<P>>) -> usize {
        let mut drained = 0;
        while let Some(Reverse(head)) = self.in_flight.peek() {
            if head.deliver_at_ns <= now_ns {
                let Reverse(p) = self.in_flight.pop().unwrap();
                self.stats.delivered += 1;
                self.stats.delivered_bytes += p.frame.wire_bytes as u64;
                out.push(p.frame);
                drained += 1;
            } else {
                break;
            }
        }
        drained
    }

    /// Frames still queued on the link.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Link statistics.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// The link's configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(bytes: usize) -> Frame<u32> {
        Frame {
            src: 1,
            dst: 2,
            flow_hash: 0,
            wire_bytes: bytes,
            payload: 0,
        }
    }

    #[test]
    fn ideal_link_delivers_immediately_in_order() {
        let mut link: Link<u32> = Link::new(LinkConfig::ideal(), 1);
        for i in 0..5 {
            let mut f = frame(100);
            f.payload = i;
            link.offer(f, 0);
        }
        let out = link.deliverable(0);
        assert_eq!(out.len(), 5);
        assert_eq!(
            out.iter().map(|f| f.payload).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(link.stats().dropped, 0);
    }

    #[test]
    fn latency_defers_delivery() {
        let mut link: Link<u32> = Link::new(LinkConfig::ideal().with_latency_us(10), 1);
        link.offer(frame(100), 0);
        assert!(link.deliverable(5_000).is_empty());
        assert_eq!(link.deliverable(10_000).len(), 1);
        assert_eq!(link.in_flight(), 0);
    }

    #[test]
    fn rate_cap_drops_excess() {
        // 1 Gbps = 125 MB/s; offering 2 MB within one instant exceeds the
        // millisecond burst (125 KB).
        let mut link: Link<u32> = Link::new(LinkConfig::ideal().with_rate_gbps(1.0), 1);
        for _ in 0..2000 {
            link.offer(frame(1000), 0);
        }
        let s = link.stats();
        assert_eq!(s.sent, 2000);
        assert!(s.dropped > 1800, "dropped {}", s.dropped);
    }

    #[test]
    fn loss_drops_roughly_the_configured_fraction() {
        let mut link: Link<u32> = Link::new(LinkConfig::ideal().with_loss(0.1), 99);
        for _ in 0..10_000 {
            link.offer(frame(100), 0);
        }
        let lost = link.stats().dropped as f64 / 10_000.0;
        assert!((lost - 0.1).abs() < 0.02, "loss rate {lost}");
    }

    #[test]
    fn reordering_changes_delivery_order() {
        let cfg = LinkConfig::ideal().with_reorder(0.3);
        let mut link: Link<u32> = Link::new(cfg, 5);
        for i in 0..100 {
            let mut f = frame(100);
            f.payload = i;
            link.offer(f, 0);
        }
        // Collect everything after the reorder window has passed.
        let out = link.deliverable(1_000_000_000);
        assert_eq!(out.len(), 100);
        let in_order = out.windows(2).all(|w| w[0].payload < w[1].payload);
        assert!(!in_order, "with 30% reordering some frames must be late");
    }

    /// Mid-flight reconfiguration must not disturb frames already admitted:
    /// they are delivered exactly once, on their original schedule.
    #[test]
    fn reconfiguration_preserves_in_flight_frames() {
        let mut link: Link<u32> = Link::new(LinkConfig::ideal().with_latency_us(10), 1);
        for i in 0..8 {
            let mut f = frame(100);
            f.payload = i;
            link.offer(f, 0);
        }
        assert_eq!(link.in_flight(), 8);
        // Degrade hard mid-flight: full loss, long delay.
        link.set_config(
            LinkConfig::ideal().with_loss(1.0).with_latency_us(10_000),
            0,
        );
        // The admitted frames still mature at the old 10 µs latency.
        let out = link.deliverable(10_000);
        assert_eq!(out.len(), 8);
        let tags: Vec<u32> = out.iter().map(|f| f.payload).collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(link.stats().dropped, 0);
        assert_eq!(link.stats().reconfigurations, 1);
        // Frames offered after the change see the new impairments.
        link.offer(frame(100), 20_000);
        assert_eq!(link.stats().dropped, 1);
    }

    /// Loss injected mid-flight never duplicates a frame: every offered
    /// frame is either delivered exactly once or counted as dropped.
    #[test]
    fn lossy_reconfiguration_conserves_frames() {
        let mut link: Link<u32> = Link::new(LinkConfig::ideal(), 7);
        let mut offered = 0u32;
        for phase in 0..4 {
            let loss = if phase % 2 == 0 { 0.0 } else { 0.3 };
            link.set_config(LinkConfig::ideal().with_loss(loss).with_reorder(0.2), 0);
            for _ in 0..500 {
                let mut f = frame(100);
                f.payload = offered;
                offered += 1;
                link.offer(f, 0);
            }
        }
        let out = link.deliverable(u64::MAX);
        let mut seen = std::collections::BTreeSet::new();
        for f in &out {
            assert!(
                seen.insert(f.payload),
                "frame {} delivered twice",
                f.payload
            );
        }
        let s = link.stats();
        assert_eq!(s.sent, offered as u64);
        assert_eq!(s.delivered + s.dropped, s.sent, "frames leaked or forged");
        assert!(s.dropped > 0, "the lossy phases must drop something");
    }

    /// A rate cap applied mid-flight polices only subsequent traffic, and
    /// lifting it restores full delivery.
    #[test]
    fn rate_change_applies_to_new_traffic_only() {
        let mut link: Link<u32> = Link::new(LinkConfig::ideal(), 3);
        for _ in 0..100 {
            link.offer(frame(1000), 0);
        }
        // Throttle hard: 0.001 Gbps admits almost nothing at one instant.
        link.set_config(LinkConfig::ideal().with_rate_gbps(0.001), 0);
        for _ in 0..100 {
            link.offer(frame(1000), 0);
        }
        let throttled_drops = link.stats().dropped;
        assert!(throttled_drops > 50, "cap must police: {throttled_drops}");
        // Lift the cap: traffic flows freely again.
        link.set_config(LinkConfig::ideal(), 0);
        for _ in 0..100 {
            link.offer(frame(1000), 0);
        }
        assert_eq!(link.stats().dropped, throttled_drops);
        assert_eq!(link.deliverable(0).len() as u64, link.stats().delivered);
    }

    /// Retransmissions after loss still get through: the link treats every
    /// offer independently, so a re-offered (retransmitted) frame is
    /// eventually delivered even under heavy loss.
    #[test]
    fn retransmitted_frames_eventually_deliver_under_loss() {
        let mut link: Link<u32> = Link::new(LinkConfig::ideal().with_loss(0.5), 21);
        let mut delivered = false;
        for attempt in 0..64 {
            let mut f = frame(100);
            f.payload = 42;
            link.offer(f, attempt);
            if !link.deliverable(u64::MAX).is_empty() {
                delivered = true;
                break;
            }
        }
        assert!(delivered, "64 retransmissions all lost at p=0.5");
    }

    #[test]
    fn drain_deliverable_reuses_the_callers_buffer() {
        let mut link: Link<u32> = Link::new(LinkConfig::ideal(), 1);
        link.offer(frame(10), 0);
        link.offer(frame(20), 0);
        let mut buf = Vec::with_capacity(4);
        assert_eq!(link.drain_deliverable(0, &mut buf), 2);
        assert_eq!(buf.len(), 2);
        // Appends without clearing: the caller owns the buffer lifecycle.
        link.offer(frame(30), 0);
        assert_eq!(link.drain_deliverable(0, &mut buf), 1);
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn stats_track_bytes() {
        let mut link: Link<u32> = Link::new(LinkConfig::ideal(), 1);
        link.offer(frame(500), 0);
        link.offer(frame(300), 0);
        let _ = link.deliverable(0);
        assert_eq!(link.stats().delivered_bytes, 800);
        assert_eq!(link.stats().delivered, 2);
    }
}
