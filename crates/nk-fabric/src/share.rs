//! The share-lane → host-hub edge: a wait-free SPSC report channel.
//!
//! Intra-host sharding splits a `NetKernelHost` into per-NSM-share lanes
//! (polled on worker threads) and a serial hub (polled by the coordinator at
//! the round barrier). Just as [`crate::uplink`] is the only cross-thread
//! edge between a host shard and the ToR, this channel is the only
//! cross-thread edge between a share lane and its host hub: the lane pushes
//! work reports during its poll round, the hub drains them at the barrier —
//! in (`HostId`, lane key) order — to charge the shared-memory core ledger
//! and feed the weighted lane placer.
//!
//! One producer (the lane), one consumer (the hub), pushes that never fail:
//! built directly on [`nk_queue::unbounded()`], so both sides stay wait-free
//! and a report burst can never stall a lane or skew behaviour with shard
//! timing. The channel is generic over the report type — the lane/hub
//! protocol lives in `nk-host`, keeping this crate free of host-layer types.

use nk_queue::unbounded::{unbounded, UnboundedConsumer, UnboundedProducer};

/// The lane side of a share edge: reports leave through [`ShareTx::send`].
/// Owned by exactly one share lane (one worker thread per round).
pub struct ShareTx<T> {
    to_hub: UnboundedProducer<T>,
}

/// The hub side of the same edge: [`ShareRx::drain_with`] folds the lane's
/// reports at the round barrier. Owned by the host hub (coordinator).
pub struct ShareRx<T> {
    from_lane: UnboundedConsumer<T>,
}

/// Create the two ends of one share-lane → hub edge.
pub fn share_edge<T>() -> (ShareTx<T>, ShareRx<T>) {
    let (to_hub, from_lane) = unbounded();
    (ShareTx { to_hub }, ShareRx { from_lane })
}

impl<T> ShareTx<T> {
    /// Queue a report towards the hub. Wait-free, never fails.
    pub fn send(&mut self, report: T) {
        self.to_hub.push(report);
    }

    /// Number of reports not yet drained by the hub.
    pub fn pending(&self) -> usize {
        self.to_hub.len()
    }
}

impl<T> ShareRx<T> {
    /// Drain every queued report, handing each to `f` in FIFO order;
    /// returns how many were drained.
    pub fn drain_with(&mut self, f: impl FnMut(T)) -> usize {
        self.from_lane.drain_with(f)
    }

    /// Number of reports awaiting the barrier drain.
    pub fn pending(&self) -> usize {
        self.from_lane.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_drain_in_fifo_order() {
        let (mut lane, mut hub) = share_edge::<u64>();
        for i in 0..5 {
            lane.send(i);
        }
        assert_eq!(lane.pending(), 5);
        assert_eq!(hub.pending(), 5);
        let mut sum = 0;
        let mut seen = Vec::new();
        assert_eq!(
            hub.drain_with(|r| {
                sum += r;
                seen.push(r);
            }),
            5
        );
        assert_eq!(sum, 10);
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(hub.drain_with(|_| panic!("edge must be empty")), 0);
    }

    /// The edge crosses a thread boundary once per round: lane pushes on a
    /// worker, hub drains at the barrier after the worker's round finished.
    #[test]
    fn cross_thread_round_trip() {
        let (mut lane, mut hub) = share_edge::<u32>();
        let worker = std::thread::spawn(move || {
            for i in 0..1000 {
                lane.send(i);
            }
        });
        worker.join().unwrap();
        let mut expected = 0;
        hub.drain_with(|r| {
            assert_eq!(r, expected);
            expected += 1;
        });
        assert_eq!(expected, 1000);
    }
}
