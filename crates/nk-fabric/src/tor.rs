//! The top-of-rack switch joining host uplinks into one cluster fabric.
//!
//! Where [`crate::switch::VirtualSwitch`] forwards by exact destination
//! address (it plays the host's vSwitch), the ToR routes by *prefix*: each
//! host trunk owns an address block (`10.<host>.0.0/16` under the cluster
//! scheme) and datacenter-level endpoints (gateways, storage front-ends)
//! attach with exact-match routes. Routes are kept most-specific-first, so
//! an endpoint inside a host's block still wins over the host trunk.
//!
//! Host trunks and endpoints attach differently because they live on
//! different threads of a sharded cluster. A host trunk
//! ([`TorSwitch::attach_trunk`]) hands the host a [`HostUplink`] — the host
//! side of a pair of wait-free SPSC channels — while the ToR keeps the
//! matching [`TorUplink`]; the host pushes frames from its worker thread and
//! the coordinator drains them at the round barrier, in route order (host
//! trunks sort by prefix, i.e. ascending `HostId`), which keeps cross-shard
//! frame merging deterministic for any thread count. An endpoint
//! ([`TorSwitch::attach_endpoint`]) stays a shared [`Port`]: its stack runs
//! on the coordinator alongside the ToR, so no cross-thread edge exists.

use crate::link::{Link, LinkConfig, LinkStats};
use crate::port::{Frame, Port};
use crate::uplink::{uplink_pair, HostUplink, TorUplink};
use std::collections::BTreeMap;

/// Where a route's frames come from and go to.
enum Conduit<P> {
    /// A coordinator-local endpoint: one shared port, ToR keeps a clone.
    Endpoint(Port<P>),
    /// A host trunk: key into [`TorSwitch::uplinks`]. Detour routes
    /// installed by [`TorSwitch::add_route_via`] copy the key of the trunk
    /// serving `via`, so any number of routes can feed one uplink.
    Uplink(u32),
}

impl<P> Conduit<P> {
    fn duplicate(&self) -> Self {
        match self {
            Conduit::Endpoint(port) => Conduit::Endpoint(port.clone()),
            Conduit::Uplink(key) => Conduit::Uplink(*key),
        }
    }
}

struct Trunk<P> {
    prefix: u32,
    mask: u32,
    conduit: Conduit<P>,
    link: Link<P>,
    /// The link shape this trunk was attached with, kept so detour routes
    /// ([`TorSwitch::add_route_via`]) inherit the downlink's character.
    config: LinkConfig,
}

/// A prefix-routed top-of-rack switch over frames with payload `P`.
///
/// Routes live in a vector sorted most-specific-first (larger mask, then
/// lower prefix), so every forwarding pass resolves destinations in a fixed
/// deterministic order — the property the byte-identical cluster replays
/// build on.
pub struct TorSwitch<P> {
    routes: Vec<Trunk<P>>,
    /// ToR ends of the host uplinks, keyed by attach order.
    uplinks: BTreeMap<u32, TorUplink<P>>,
    next_uplink_key: u32,
    /// Frames dropped because no route matched the destination.
    unroutable: u64,
    /// Frames dropped because the best route led back out the ingress trunk
    /// (the owning host had no local port for the address).
    hairpins: u64,
    seed: u64,
    scratch: Vec<Frame<P>>,
}

impl<P> TorSwitch<P> {
    /// An empty ToR switch.
    pub fn new() -> Self {
        TorSwitch {
            routes: Vec::new(),
            uplinks: BTreeMap::new(),
            next_uplink_key: 0,
            unroutable: 0,
            hairpins: 0,
            seed: 0x70F2,
            scratch: Vec::new(),
        }
    }

    fn advance_seed(&mut self, prefix: u32, mask: u32) {
        self.seed = self
            .seed
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(prefix as u64)
            .wrapping_add(mask as u64);
    }

    fn install(&mut self, trunk: Trunk<P>) {
        self.routes
            .retain(|t| (t.prefix, t.mask) != (trunk.prefix, trunk.mask));
        self.routes.push(trunk);
        // Most-specific-first, ties by prefix: deterministic longest-prefix
        // matching without a trie.
        self.routes
            .sort_by_key(|t| (std::cmp::Reverse(t.mask), t.prefix));
        self.collect_dead_uplinks();
    }

    /// Drop ToR uplink ends no route references any more (a replaced or
    /// removed trunk).
    fn collect_dead_uplinks(&mut self) {
        let live: std::collections::BTreeSet<u32> = self
            .routes
            .iter()
            .filter_map(|t| match t.conduit {
                Conduit::Uplink(key) => Some(key),
                Conduit::Endpoint(_) => None,
            })
            .collect();
        self.uplinks.retain(|key, _| live.contains(key));
    }

    /// Attach a host trunk owning the block `prefix/mask`; returns the host
    /// side of the uplink channel pair for the host switch to adopt
    /// ([`crate::switch::VirtualSwitch::set_uplink`]). `link` shapes the
    /// traffic *towards* the trunk (the downlink direction). Re-attaching an
    /// existing `(prefix, mask)` replaces the old trunk (the old host end
    /// goes dead).
    pub fn attach_trunk(&mut self, prefix: u32, mask: u32, link: LinkConfig) -> HostUplink<P> {
        let prefix = prefix & mask;
        self.advance_seed(prefix, mask);
        let (host_end, tor_end) = uplink_pair(prefix);
        let key = self.next_uplink_key;
        self.next_uplink_key += 1;
        self.uplinks.insert(key, tor_end);
        self.install(Trunk {
            prefix,
            mask,
            conduit: Conduit::Uplink(key),
            link: Link::new(link, self.seed),
            config: link,
        });
        host_end
    }

    /// Attach a single endpoint (an exact-match /32 route), e.g. a
    /// datacenter gateway every host talks to. Returns its port. Endpoints
    /// stay mutex-shared [`Port`]s — their stacks run on the coordinator
    /// next to the ToR, never across a shard boundary.
    pub fn attach_endpoint(&mut self, addr: u32, link: LinkConfig) -> Port<P> {
        self.advance_seed(addr, u32::MAX);
        let port = Port::new(addr);
        self.install(Trunk {
            prefix: addr,
            mask: u32::MAX,
            conduit: Conduit::Endpoint(port.clone()),
            link: Link::new(link, self.seed),
            config: link,
        });
        port
    }

    /// Install a detour: frames for `prefix/mask` are delivered down the
    /// trunk that currently serves `via`, overriding the longest-prefix
    /// match. A warm migration adds a host route (`/32`) for each
    /// transplanted connection's address so the peer's frames follow the
    /// connection to its new host — the mid-step reroute of the handover.
    /// Replaces any previous route for the same `(prefix, mask)`. Returns
    /// `false` (and installs nothing) when no trunk serves `via`.
    pub fn add_route_via(&mut self, prefix: u32, mask: u32, via: u32) -> bool {
        let Some(i) = Self::route_of(&self.routes, via) else {
            return false;
        };
        let prefix = prefix & mask;
        let conduit = self.routes[i].conduit.duplicate();
        let config = self.routes[i].config;
        self.advance_seed(prefix, mask);
        let link = Link::new(config, self.seed);
        self.install(Trunk {
            prefix,
            mask,
            conduit,
            link,
            config,
        });
        true
    }

    /// Remove the route for exactly `(prefix, mask)` — the undo of
    /// [`TorSwitch::add_route_via`] when a handover rolls back. Returns
    /// whether a route was removed. Frames already accepted onto the
    /// removed route's link are dropped with it.
    pub fn remove_route(&mut self, prefix: u32, mask: u32) -> bool {
        let prefix = prefix & mask;
        let before = self.routes.len();
        self.routes.retain(|t| (t.prefix, t.mask) != (prefix, mask));
        let removed = before != self.routes.len();
        if removed {
            self.collect_dead_uplinks();
        }
        removed
    }

    /// Number of attached routes (trunks plus endpoints).
    pub fn routes(&self) -> usize {
        self.routes.len()
    }

    /// Frames dropped because no route matched.
    pub fn unroutable(&self) -> u64 {
        self.unroutable
    }

    /// Frames dropped because they would have exited their ingress trunk.
    pub fn hairpins(&self) -> u64 {
        self.hairpins
    }

    /// Statistics of the link towards the route for `prefix` (as passed to
    /// [`TorSwitch::attach_trunk`], i.e. already masked).
    pub fn link_stats(&self, prefix: u32) -> Option<LinkStats> {
        self.routes
            .iter()
            .find(|t| t.prefix == prefix & t.mask)
            .map(|t| t.link.stats())
    }

    fn route_of(routes: &[Trunk<P>], dst: u32) -> Option<usize> {
        routes.iter().position(|t| dst & t.mask == t.prefix)
    }

    /// Forward frames: drain every route's ingress in route order, push each
    /// frame through the destination route's link, and deliver everything
    /// whose time has come. Returns the number of frames delivered.
    ///
    /// In a sharded cluster this runs on the coordinator at the round
    /// barrier: host workers are parked, so the drain over routes — sorted
    /// by prefix, i.e. ascending host id — is the deterministic merge point
    /// of all cross-shard traffic.
    pub fn step(&mut self, now_ns: u64) -> usize {
        self.step_with(now_ns, |_| {})
    }

    /// [`TorSwitch::step`] with a tap called on every frame at the moment
    /// of delivery — in route order, on the coordinator, which makes the
    /// tap sequence the same for any cluster thread count. The flight
    /// recorder's hot-flow table hangs off this.
    pub fn step_with<F: FnMut(&Frame<P>)>(&mut self, now_ns: u64, mut tap: F) -> usize {
        let mut scratch = std::mem::take(&mut self.scratch);
        for i in 0..self.routes.len() {
            scratch.clear();
            match &self.routes[i].conduit {
                Conduit::Endpoint(port) => {
                    port.drain_tx_into(usize::MAX, &mut scratch);
                }
                Conduit::Uplink(key) => {
                    if let Some(up) = self.uplinks.get_mut(key) {
                        up.drain_into(&mut scratch);
                    }
                }
            }
            for f in scratch.drain(..) {
                match Self::route_of(&self.routes, f.dst) {
                    Some(j) if j != i => self.routes[j].link.offer(f, now_ns),
                    // The best route points back where the frame came from:
                    // the owning host has no port for this address. Dropping
                    // here (instead of reflecting) keeps a dead vNIC from
                    // bouncing frames between host switch and ToR forever.
                    Some(_) => self.hairpins += 1,
                    None => self.unroutable += 1,
                }
            }
        }
        let mut delivered = 0;
        for i in 0..self.routes.len() {
            scratch.clear();
            self.routes[i].link.drain_deliverable(now_ns, &mut scratch);
            for f in scratch.drain(..) {
                tap(&f);
                match &self.routes[i].conduit {
                    Conduit::Endpoint(port) => port.deliver(f),
                    Conduit::Uplink(key) => {
                        if let Some(up) = self.uplinks.get_mut(key) {
                            up.deliver(f);
                        }
                    }
                }
                delivered += 1;
            }
        }
        self.scratch = scratch;
        delivered
    }
}

impl<P> nk_sim::Pollable for TorSwitch<P> {
    /// One forwarding pass: trunk ingress plus delivery of every frame whose
    /// link latency has elapsed at `now_ns`.
    fn poll(&mut self, now_ns: u64) -> usize {
        self.step(now_ns)
    }
}

impl<P> Default for TorSwitch<P> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::VirtualSwitch;

    const HOST_MASK: u32 = 0xFFFF_0000;

    fn frame(src: u32, dst: u32, tag: u32) -> Frame<u32> {
        Frame {
            src,
            dst,
            flow_hash: tag as u64,
            wire_bytes: 100,
            payload: tag,
        }
    }

    #[test]
    fn routes_between_trunks_by_prefix() {
        let mut tor: TorSwitch<u32> = TorSwitch::new();
        let mut t1 = tor.attach_trunk(0x0A01_0000, HOST_MASK, LinkConfig::ideal());
        let mut t2 = tor.attach_trunk(0x0A02_0000, HOST_MASK, LinkConfig::ideal());
        assert_eq!(tor.routes(), 2);

        t1.send(frame(0x0A01_0001, 0x0A02_0007, 11));
        let delivered = tor.step(0);
        assert_eq!(delivered, 1);
        assert_eq!(t2.recv().unwrap().payload, 11);
        assert_eq!(tor.link_stats(0x0A02_0000).unwrap().delivered, 1);
    }

    /// An exact-match endpoint inside a trunk's block wins over the trunk.
    #[test]
    fn endpoints_are_more_specific_than_trunks() {
        let mut tor: TorSwitch<u32> = TorSwitch::new();
        let mut trunk = tor.attach_trunk(0x0A01_0000, HOST_MASK, LinkConfig::ideal());
        let gw = tor.attach_endpoint(0x0A01_0500, LinkConfig::ideal());

        let mut other = tor.attach_trunk(0x0A02_0000, HOST_MASK, LinkConfig::ideal());
        other.send(frame(0x0A02_0001, 0x0A01_0500, 1));
        other.send(frame(0x0A02_0001, 0x0A01_0001, 2));
        tor.step(0);
        assert_eq!(gw.recv().unwrap().payload, 1);
        assert_eq!(trunk.recv().unwrap().payload, 2);
    }

    /// Frames that would exit their ingress trunk (or match nothing) die at
    /// the ToR with distinct counters.
    #[test]
    fn hairpins_and_unknown_destinations_are_dropped() {
        let mut tor: TorSwitch<u32> = TorSwitch::new();
        let mut t1 = tor.attach_trunk(0x0A01_0000, HOST_MASK, LinkConfig::ideal());
        t1.send(frame(0x0A01_0001, 0x0A01_0099, 1)); // back out the same trunk
        t1.send(frame(0x0A01_0001, 0xDEAD_0000, 2)); // no route at all
        tor.step(0);
        assert_eq!(tor.hairpins(), 1);
        assert_eq!(tor.unroutable(), 1);
        assert!(t1.recv().is_none());
    }

    /// A detour route steers one address off its home trunk and onto
    /// another host's trunk — the warm-migration reroute — and removing it
    /// restores longest-prefix routing.
    #[test]
    fn detour_route_overrides_prefix_and_is_removable() {
        let mut tor: TorSwitch<u32> = TorSwitch::new();
        let mut t1 = tor.attach_trunk(0x0A01_0000, HOST_MASK, LinkConfig::ideal());
        let mut t2 = tor.attach_trunk(0x0A02_0000, HOST_MASK, LinkConfig::ideal());
        let gw = tor.attach_endpoint(0xC0A8_0001, LinkConfig::ideal());

        // The migrated address 10.1.0.1 now lives behind host 2's trunk.
        assert!(tor.add_route_via(0x0A01_0001, u32::MAX, 0x0A02_0000));
        assert!(!tor.add_route_via(0x0A01_0001, u32::MAX, 0xDEAD_0000));

        gw.send(frame(0xC0A8_0001, 0x0A01_0001, 1)); // rerouted address
        gw.send(frame(0xC0A8_0001, 0x0A01_0002, 2)); // rest of the block
        tor.step(0);
        assert_eq!(t2.recv().unwrap().payload, 1, "detour wins over the /16");
        assert_eq!(t1.recv().unwrap().payload, 2);

        // Rollback: the /32 goes away and the block routes whole again.
        assert!(tor.remove_route(0x0A01_0001, u32::MAX));
        assert!(!tor.remove_route(0x0A01_0001, u32::MAX));
        gw.send(frame(0xC0A8_0001, 0x0A01_0001, 3));
        tor.step(0);
        assert_eq!(t1.recv().unwrap().payload, 3);
    }

    /// The delivery tap sees every delivered frame, in route order.
    #[test]
    fn step_with_taps_delivered_frames() {
        let mut tor: TorSwitch<u32> = TorSwitch::new();
        let mut t1 = tor.attach_trunk(0x0A01_0000, HOST_MASK, LinkConfig::ideal());
        let mut t2 = tor.attach_trunk(0x0A02_0000, HOST_MASK, LinkConfig::ideal());
        t1.send(frame(0x0A01_0001, 0x0A02_0007, 11));
        t1.send(frame(0x0A01_0001, 0x0A02_0008, 12));
        let mut tapped = Vec::new();
        let delivered = tor.step_with(0, |f| tapped.push((f.dst, f.payload)));
        assert_eq!(delivered, 2);
        assert_eq!(tapped, vec![(0x0A02_0007, 11), (0x0A02_0008, 12)]);
        assert_eq!(t2.recv().unwrap().payload, 11);
    }

    /// Downlink latency applies on the way towards a trunk.
    #[test]
    fn trunk_link_latency_applies() {
        let mut tor: TorSwitch<u32> = TorSwitch::new();
        let mut t1 = tor.attach_trunk(0x0A01_0000, HOST_MASK, LinkConfig::ideal());
        let mut t2 = tor.attach_trunk(
            0x0A02_0000,
            HOST_MASK,
            LinkConfig::ideal().with_latency_us(50),
        );
        t1.send(frame(0x0A01_0001, 0x0A02_0001, 5));
        tor.step(0);
        assert_eq!(t2.rx_pending(), 0);
        tor.step(50_000);
        assert_eq!(t2.recv().unwrap().payload, 5);
    }

    /// Two host switches wired through the ToR: a frame crosses host A's
    /// switch → uplink → ToR → host B's uplink → host B's switch → port.
    #[test]
    fn end_to_end_across_two_host_switches() {
        let mut tor: TorSwitch<u32> = TorSwitch::new();
        let mut sw_a: VirtualSwitch<u32> = VirtualSwitch::new();
        let mut sw_b: VirtualSwitch<u32> = VirtualSwitch::new();
        sw_a.set_uplink(tor.attach_trunk(0x0A01_0000, HOST_MASK, LinkConfig::ideal()));
        sw_b.set_uplink(tor.attach_trunk(0x0A02_0000, HOST_MASK, LinkConfig::ideal()));
        let a = sw_a.attach(0x0A01_0001);
        let b = sw_b.attach(0x0A02_0001);

        a.send(frame(0x0A01_0001, 0x0A02_0001, 77));
        sw_a.step(0); // local miss → uplink
        tor.step(0); // trunk A → trunk B
        sw_b.step(0); // uplink → local port
        assert_eq!(b.recv().unwrap().payload, 77);
        assert_eq!(sw_a.uplink_stats().tx_frames, 1);
        assert_eq!(sw_b.uplink_stats().rx_frames, 1);
        assert_eq!(sw_a.unroutable() + sw_b.unroutable(), 0);

        // And the reply crosses back.
        b.send(frame(0x0A02_0001, 0x0A01_0001, 78));
        sw_b.step(0);
        tor.step(0);
        sw_a.step(0);
        assert_eq!(a.recv().unwrap().payload, 78);
    }

    /// Replacing a trunk kills the old host end (its channels go dead) and
    /// garbage-collects the old ToR uplink end.
    #[test]
    fn reattach_replaces_the_trunk_and_collects_the_old_uplink() {
        let mut tor: TorSwitch<u32> = TorSwitch::new();
        let mut old = tor.attach_trunk(0x0A01_0000, HOST_MASK, LinkConfig::ideal());
        let mut gw_feed = tor.attach_trunk(0x0A02_0000, HOST_MASK, LinkConfig::ideal());
        let mut new = tor.attach_trunk(0x0A01_0000, HOST_MASK, LinkConfig::ideal());
        assert_eq!(tor.routes(), 2, "re-attach replaced, not duplicated");

        gw_feed.send(frame(0x0A02_0001, 0x0A01_0001, 9));
        tor.step(0);
        assert_eq!(new.recv().unwrap().payload, 9, "new end serves the block");
        assert!(old.recv().is_none(), "old end is dead");

        // Frames the dead end sends are never drained.
        old.send(frame(0x0A01_0001, 0x0A02_0001, 1));
        tor.step(0);
        assert!(gw_feed.recv().is_none());
    }
}
