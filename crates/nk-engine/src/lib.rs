//! CoreEngine: the NQE software switch and control plane.
//!
//! CoreEngine "runs on the hypervisor and performs actual NQE switching"
//! (paper §4.3) and also acts as the control plane (§4.4): it sets up NK
//! devices when VMs and NSMs come and go, maintains the connection table
//! mapping VM tuples to NSM tuples, polls every queue set round-robin for
//! basic fairness, and optionally enforces per-VM token-bucket rate limits or
//! operation-rate limits (§7.6).

pub mod engine;
pub mod table;

pub use engine::{CoreEngine, EngineStats, VmSwitchStats};
pub use table::{ConnEntry, ConnTable};
