//! The CoreEngine connection table (paper §4.3, Figure 6).

use nk_types::{ConnKey, NsmId, QueueSetId, SocketId, VmId};
use std::collections::BTreeMap;

/// One connection-table entry: the NSM side of a VM tuple.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConnEntry {
    /// NSM serving this connection.
    pub nsm: NsmId,
    /// NSM-side queue set the connection is pinned to.
    pub nsm_queue_set: QueueSetId,
    /// NSM-side socket id, filled in once the NSM's response reveals it
    /// (step 4 in Figure 6).
    pub nsm_socket: Option<SocketId>,
}

/// The connection table mapping ⟨VM id, queue set, socket⟩ to
/// ⟨NSM id, queue set, socket⟩.
///
/// Keyed by a `BTreeMap` so every iteration below walks entries in
/// `ConnKey` order: the table sits on the datapath, and any hash-ordered
/// walk here would make replay output depend on the map's per-instance
/// seed (the determinism contract of PRs 6, 8 and 9).
#[derive(Default)]
pub struct ConnTable {
    entries: BTreeMap<ConnKey, ConnEntry>,
}

impl ConnTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked connections.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no connection is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up the entry for a VM tuple.
    pub fn get(&self, key: &ConnKey) -> Option<&ConnEntry> {
        self.entries.get(key)
    }

    /// Insert or fetch the entry for a VM tuple, choosing the NSM queue set
    /// with `pick` when the tuple is new.
    pub fn get_or_insert_with(
        &mut self,
        key: ConnKey,
        pick: impl FnOnce() -> (NsmId, QueueSetId),
    ) -> &mut ConnEntry {
        self.entries.entry(key).or_insert_with(|| {
            let (nsm, nsm_queue_set) = pick();
            ConnEntry {
                nsm,
                nsm_queue_set,
                nsm_socket: None,
            }
        })
    }

    /// Record the NSM-side socket id once it is known.
    pub fn complete(&mut self, key: &ConnKey, nsm_socket: SocketId) {
        if let Some(e) = self.entries.get_mut(key) {
            e.nsm_socket = Some(nsm_socket);
        }
    }

    /// Remove the entry for a VM tuple (connection closed).
    pub fn remove(&mut self, key: &ConnKey) -> Option<ConnEntry> {
        self.entries.remove(key)
    }

    /// Remove every entry belonging to a VM (VM shut down, §4.4).
    pub fn remove_vm(&mut self, vm: VmId) -> usize {
        let before = self.entries.len();
        self.entries.retain(|k, _| k.entity != vm.0);
        before - self.entries.len()
    }

    /// Every entry belonging to a VM, sorted by key (non-destructive view;
    /// warm migration pre-validates against this before extracting). The
    /// ordered map walks in `ConnKey` order, so no explicit sort is needed.
    pub fn entries_for_vm(&self, vm: VmId) -> Vec<(ConnKey, ConnEntry)> {
        self.entries
            .iter()
            .filter(|(k, _)| k.entity == vm.0)
            .map(|(k, e)| (*k, *e))
            .collect()
    }

    /// Remove and return every entry belonging to a VM, sorted by key — the
    /// extraction half of a warm migration's connection transplant. Unlike
    /// [`ConnTable::remove_vm`] the entries come back to the caller, which
    /// re-installs them on the destination host.
    pub fn extract_vm(&mut self, vm: VmId) -> Vec<(ConnKey, ConnEntry)> {
        let out = self.entries_for_vm(vm);
        for (k, _) in &out {
            self.entries.remove(k);
        }
        out
    }

    /// Install a fully formed entry (the installation half of a warm
    /// migration): the tuple pins to `nsm` with a known NSM-side socket.
    /// Refused when the tuple is already pinned.
    pub fn install(&mut self, key: ConnKey, entry: ConnEntry) -> bool {
        if self.entries.contains_key(&key) {
            return false;
        }
        self.entries.insert(key, entry);
        true
    }

    /// Every ⟨VM, NSM⟩ relation currently pinned, one per entry (a VM with
    /// several tuples on one NSM appears repeatedly), in `ConnKey` order.
    /// Share-lane grouping unions over these edges; the order is pinned by
    /// a regression test anyway so no caller can come to depend on an
    /// unstable walk.
    pub fn vm_nsm_pairs(&self) -> Vec<(VmId, NsmId)> {
        self.entries
            .iter()
            .map(|(k, e)| (VmId(k.entity), e.nsm))
            .collect()
    }

    /// Number of connections currently mapped to `nsm`.
    pub fn connections_for_nsm(&self, nsm: NsmId) -> usize {
        self.entries.values().filter(|e| e.nsm == nsm).count()
    }

    /// Number of connections a VM currently has pinned, across all NSMs.
    /// This is the count connection draining watches: a migrated VM's source
    /// share retires when it reaches zero.
    pub fn connections_for_vm(&self, vm: VmId) -> usize {
        self.entries.keys().filter(|k| k.entity == vm.0).count()
    }

    /// Number of connections pinned to the `(vm, nsm)` pair — the per-share
    /// drain counter of the ROADMAP's migration drain mode.
    pub fn connections_for_vm_nsm(&self, vm: VmId, nsm: NsmId) -> usize {
        self.entries
            .iter()
            .filter(|(k, e)| k.entity == vm.0 && e.nsm == nsm)
            .count()
    }

    /// Remove every entry pinned to `nsm` (the NSM crashed) and return the
    /// affected VM tuples, sorted so callers notify guests in a
    /// deterministic order (the ordered map already walks in key order).
    pub fn remove_nsm(&mut self, nsm: NsmId) -> Vec<ConnKey> {
        let victims: Vec<ConnKey> = self
            .entries
            .iter()
            .filter(|(_, e)| e.nsm == nsm)
            .map(|(k, _)| *k)
            .collect();
        for k in &victims {
            self.entries.remove(k);
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(vm: u8, qs: u8, sock: u32) -> ConnKey {
        ConnKey::vm(VmId(vm), QueueSetId(qs), SocketId(sock))
    }

    #[test]
    fn insert_lookup_complete_remove() {
        let mut t = ConnTable::new();
        assert!(t.is_empty());
        let e = t.get_or_insert_with(key(1, 0, 7), || (NsmId(1), QueueSetId(2)));
        assert_eq!(e.nsm, NsmId(1));
        assert_eq!(e.nsm_queue_set, QueueSetId(2));
        assert_eq!(e.nsm_socket, None);

        // A second lookup does not re-pick.
        let e = t.get_or_insert_with(key(1, 0, 7), || panic!("must not re-pick"));
        assert_eq!(e.nsm, NsmId(1));

        t.complete(&key(1, 0, 7), SocketId(99));
        assert_eq!(t.get(&key(1, 0, 7)).unwrap().nsm_socket, Some(SocketId(99)));

        assert!(t.remove(&key(1, 0, 7)).is_some());
        assert!(t.get(&key(1, 0, 7)).is_none());
    }

    #[test]
    fn remove_vm_clears_only_that_vm() {
        let mut t = ConnTable::new();
        for sock in 0..5 {
            t.get_or_insert_with(key(1, 0, sock), || (NsmId(1), QueueSetId(0)));
            t.get_or_insert_with(key(2, 0, sock), || (NsmId(1), QueueSetId(0)));
        }
        assert_eq!(t.len(), 10);
        assert_eq!(t.remove_vm(VmId(1)), 5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.connections_for_nsm(NsmId(1)), 5);
    }

    #[test]
    fn remove_nsm_returns_sorted_victims_and_clears_entries() {
        let mut t = ConnTable::new();
        t.get_or_insert_with(key(2, 0, 9), || (NsmId(1), QueueSetId(0)));
        t.get_or_insert_with(key(1, 0, 3), || (NsmId(1), QueueSetId(0)));
        t.get_or_insert_with(key(1, 0, 1), || (NsmId(2), QueueSetId(0)));
        let victims = t.remove_nsm(NsmId(1));
        assert_eq!(victims, vec![key(1, 0, 3), key(2, 0, 9)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.connections_for_nsm(NsmId(1)), 0);
        assert!(t.remove_nsm(NsmId(1)).is_empty());
    }

    #[test]
    fn extract_and_install_round_trip_entries() {
        let mut t = ConnTable::new();
        t.get_or_insert_with(key(1, 0, 2), || (NsmId(1), QueueSetId(0)));
        t.get_or_insert_with(key(1, 0, 1), || (NsmId(1), QueueSetId(1)));
        t.get_or_insert_with(key(2, 0, 3), || (NsmId(1), QueueSetId(0)));
        t.complete(&key(1, 0, 1), SocketId(77));

        let view = t.entries_for_vm(VmId(1));
        assert_eq!(view.len(), 2);
        assert_eq!(t.len(), 3, "the view is non-destructive");

        let extracted = t.extract_vm(VmId(1));
        assert_eq!(extracted, view, "extraction returns the same sorted set");
        assert_eq!(extracted[0].0, key(1, 0, 1));
        assert_eq!(extracted[0].1.nsm_socket, Some(SocketId(77)));
        assert_eq!(t.connections_for_vm(VmId(1)), 0);
        assert_eq!(t.len(), 1, "other VMs' entries survive");

        // Re-install on "the destination": pinned again, double install
        // refused.
        for (k, e) in &extracted {
            assert!(t.install(*k, *e));
        }
        assert!(!t.install(extracted[0].0, extracted[0].1));
        assert_eq!(t.connections_for_vm(VmId(1)), 2);
    }

    /// Iteration-order pin: the table's walk order is part of the
    /// determinism contract. Entries inserted in scrambled order must come
    /// back in `ConnKey` order from every iterating accessor — a regression
    /// to a hash-ordered map would scramble `vm_nsm_pairs` (share-lane
    /// grouping input) and `remove_nsm` (guest notification order) between
    /// runs and break byte-identical replay.
    #[test]
    fn iteration_order_is_key_sorted_regardless_of_insertion_order() {
        let mut t = ConnTable::new();
        // Scrambled insertion order across VMs, queue sets and sockets.
        for (vm, qs, sock, nsm) in [
            (3u8, 1u8, 9u32, 2u8),
            (1, 0, 5, 1),
            (2, 1, 1, 2),
            (1, 1, 2, 1),
            (3, 0, 7, 1),
            (1, 0, 1, 2),
        ] {
            t.get_or_insert_with(key(vm, qs, sock), || (NsmId(nsm), QueueSetId(0)));
        }
        let pairs = t.vm_nsm_pairs();
        let keys: Vec<ConnKey> = t.entries_for_vm(VmId(1)).iter().map(|(k, _)| *k).collect();
        // Exact pinned orders (ConnKey orders by entity, then queue set,
        // then socket).
        assert_eq!(
            pairs,
            vec![
                (VmId(1), NsmId(2)),
                (VmId(1), NsmId(1)),
                (VmId(1), NsmId(1)),
                (VmId(2), NsmId(2)),
                (VmId(3), NsmId(1)),
                (VmId(3), NsmId(2)),
            ]
        );
        assert_eq!(keys, vec![key(1, 0, 1), key(1, 0, 5), key(1, 1, 2)]);
        let victims = t.remove_nsm(NsmId(2));
        assert_eq!(victims, vec![key(1, 0, 1), key(2, 1, 1), key(3, 1, 9)]);
    }

    #[test]
    fn connections_per_nsm_counts() {
        let mut t = ConnTable::new();
        t.get_or_insert_with(key(1, 0, 1), || (NsmId(1), QueueSetId(0)));
        t.get_or_insert_with(key(1, 0, 2), || (NsmId(2), QueueSetId(0)));
        t.get_or_insert_with(key(2, 0, 3), || (NsmId(2), QueueSetId(0)));
        assert_eq!(t.connections_for_nsm(NsmId(1)), 1);
        assert_eq!(t.connections_for_nsm(NsmId(2)), 2);
        assert_eq!(t.connections_for_nsm(NsmId(9)), 0);
    }

    #[test]
    fn pinned_counts_per_vm_and_per_share() {
        let mut t = ConnTable::new();
        t.get_or_insert_with(key(1, 0, 1), || (NsmId(1), QueueSetId(0)));
        t.get_or_insert_with(key(1, 0, 2), || (NsmId(2), QueueSetId(0)));
        t.get_or_insert_with(key(2, 0, 3), || (NsmId(1), QueueSetId(0)));
        assert_eq!(t.connections_for_vm(VmId(1)), 2);
        assert_eq!(t.connections_for_vm(VmId(2)), 1);
        assert_eq!(t.connections_for_vm(VmId(9)), 0);
        assert_eq!(t.connections_for_vm_nsm(VmId(1), NsmId(1)), 1);
        assert_eq!(t.connections_for_vm_nsm(VmId(1), NsmId(2)), 1);
        assert_eq!(t.connections_for_vm_nsm(VmId(2), NsmId(2)), 0);
        // The drain counter reaches zero as connections close.
        t.remove(&key(1, 0, 1));
        assert_eq!(t.connections_for_vm_nsm(VmId(1), NsmId(1)), 0);
    }
}
