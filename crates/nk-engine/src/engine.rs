//! The NQE switching engine.

use crate::table::{ConnEntry, ConnTable};
use nk_queue::{RequesterEnd, ResponderEnd, WakeState};
use nk_shmem::HugepageRegion;
use nk_sim::TokenBucket;
use nk_types::{
    ConnKey, IsolationPolicy, NkError, NkResult, Nqe, NsmId, OpResult, OpType, QueueSetId,
    SocketId, VmId,
};
use std::collections::{BTreeMap, BTreeSet};

/// Per-VM switching statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct VmSwitchStats {
    /// Request NQEs forwarded to NSMs.
    pub nqes_forwarded: u64,
    /// Response NQEs delivered back to the VM.
    pub nqes_delivered: u64,
    /// Payload bytes forwarded on the send path.
    pub bytes_forwarded: u64,
    /// NQEs deferred by rate limiting (they stay queued and are retried).
    pub throttled: u64,
    /// Request NQEs dropped because no NSM was serving the VM (each is
    /// answered with an error completion so the guest observes the failure).
    pub dropped: u64,
}

/// Aggregate CoreEngine statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EngineStats {
    /// Total NQEs switched in both directions.
    pub nqes_switched: u64,
    /// Poll batches executed.
    pub poll_rounds: u64,
    /// Virtual interrupts (wake-ups) delivered to guest NK devices.
    pub wakeups: u64,
    /// Connections reset because their NSM crashed (fault injection).
    pub conn_resets: u64,
}

struct VmPort {
    /// Switch-side ends of the VM's queue sets (one per vCPU).
    ends: Vec<ResponderEnd>,
    wake: WakeState,
    /// Egress bandwidth limiter (bytes), when the policy asks for one.
    rate_bucket: Option<TokenBucket>,
    /// Egress operation limiter (NQEs per second), when the policy asks.
    ops_bucket: Option<TokenBucket>,
    /// NQEs that could not be forwarded yet (rate limit or full NSM queue);
    /// retried first, in order, on later polls.
    stalled: Vec<std::collections::VecDeque<Nqe>>,
    /// Engine-originated events (connection resets from an NSM crash) that
    /// did not fit the guest's completion queue; redelivered, in order, on
    /// later polls so a crash notification is never lost.
    pending_events: std::collections::VecDeque<Nqe>,
    /// The hugepage region shared between the VM and its NSMs, so payload of
    /// requests dropped by the engine (NSM crashed) can be reclaimed.
    region: Option<HugepageRegion>,
    tenant: u32,
    stats: VmSwitchStats,
}

struct NsmPort {
    /// Switch-side ends of the NSM's queue sets (one per vCPU).
    ends: Vec<RequesterEnd>,
}

/// Outcome of attempting to forward one request NQE.
enum Forward {
    /// Forwarded to the NSM.
    Done,
    /// Dropped with an error reply to the guest (no NSM serving the VM);
    /// carries whether the reply delivered a wakeup, which the caller
    /// accounts into [`EngineStats::wakeups`].
    Dropped { woken: bool },
    /// Could not go through yet (throttle or backpressure); retry later.
    Stalled(Nqe),
}

/// The CoreEngine software switch.
///
/// All port maps are `BTreeMap`s and every polling round visits VMs and
/// NSMs in ascending id order — the engine is bit-for-bit deterministic
/// across runs, which the seeded fault-injection scenarios rely on.
///
/// The fixed id order is also what makes the engine *decomposable*: VMs of
/// disjoint NSM share groups never touch each other's ports, table entries
/// or queues, so polling a subset of the id space commutes with polling the
/// rest. [`CoreEngine::extract_shard`] carves one share group out into its
/// own engine (polled on a worker thread as part of a share lane) and
/// [`CoreEngine::absorb_shard`] merges it back, with the whole-engine poll
/// and the group-by-group polls producing byte-identical state.
pub struct CoreEngine {
    vms: BTreeMap<VmId, VmPort>,
    nsms: BTreeMap<NsmId, NsmPort>,
    mapping: BTreeMap<VmId, NsmId>,
    /// VMs inside a warm-migration freeze window: no *fresh* requests are
    /// popped from their queues (in-flight work still drains — stalled NQEs
    /// retry and responses deliver), so the snapshot closes over a
    /// quiescent pipeline.
    frozen: BTreeSet<VmId>,
    table: ConnTable,
    isolation: IsolationPolicy,
    batch: usize,
    stats: EngineStats,
    scratch: Vec<Nqe>,
    /// Reused per-round buffer of the VM ids to poll (id order).
    vm_scratch: Vec<VmId>,
}

impl CoreEngine {
    /// A CoreEngine with the given isolation policy and NQE batch size.
    pub fn new(isolation: IsolationPolicy, batch: usize) -> Self {
        CoreEngine {
            vms: BTreeMap::new(),
            nsms: BTreeMap::new(),
            mapping: BTreeMap::new(),
            frozen: BTreeSet::new(),
            table: ConnTable::new(),
            isolation,
            batch: batch.max(1),
            stats: EngineStats::default(),
            scratch: Vec::new(),
            vm_scratch: Vec::new(),
        }
    }

    /// Register a VM's NK device (switch-side queue ends plus its wake flag).
    ///
    /// `region` is the hugepage region the VM shares with its NSMs; the
    /// engine uses it to reclaim the payload of requests it has to drop
    /// (e.g. a `Send` in flight when the serving NSM crashed). `None` keeps
    /// the engine out of payload management entirely.
    #[allow(clippy::too_many_arguments)]
    pub fn register_vm(
        &mut self,
        vm: VmId,
        ends: Vec<ResponderEnd>,
        wake: WakeState,
        tenant: u32,
        rate_limit_gbps: Option<f64>,
        region: Option<HugepageRegion>,
        now_ns: u64,
    ) -> NkResult<()> {
        if self.vms.contains_key(&vm) {
            return Err(NkError::AlreadyRegistered);
        }
        let rate_bucket = match (&self.isolation, rate_limit_gbps) {
            (IsolationPolicy::RateLimited, Some(gbps)) => {
                let bytes_per_sec = gbps * 1e9 / 8.0;
                // The burst must cover at least one maximum-size data chunk,
                // otherwise large sends could never pass the cap.
                let burst = (bytes_per_sec / 1_000.0).max(64.0 * 1024.0);
                Some(TokenBucket::new(bytes_per_sec, burst, now_ns))
            }
            _ => None,
        };
        let ops_bucket = match &self.isolation {
            IsolationPolicy::OpsLimited { max_ops_per_sec } => Some(TokenBucket::new(
                *max_ops_per_sec as f64,
                (*max_ops_per_sec as f64 / 100.0).max(1.0),
                now_ns,
            )),
            _ => None,
        };
        let stalled = (0..ends.len())
            .map(|_| std::collections::VecDeque::new())
            .collect();
        self.vms.insert(
            vm,
            VmPort {
                ends,
                wake,
                rate_bucket,
                ops_bucket,
                stalled,
                pending_events: std::collections::VecDeque::new(),
                region,
                tenant,
                stats: VmSwitchStats::default(),
            },
        );
        Ok(())
    }

    /// Deregister a VM: its queue ends are dropped and its connections are
    /// removed from the table.
    pub fn deregister_vm(&mut self, vm: VmId) -> NkResult<()> {
        self.vms.remove(&vm).ok_or(NkError::NotFound)?;
        self.mapping.remove(&vm);
        self.frozen.remove(&vm);
        self.table.remove_vm(vm);
        Ok(())
    }

    /// Register an NSM's NK device (switch-side queue ends).
    pub fn register_nsm(&mut self, nsm: NsmId, ends: Vec<RequesterEnd>) -> NkResult<()> {
        if self.nsms.contains_key(&nsm) {
            return Err(NkError::AlreadyRegistered);
        }
        self.nsms.insert(nsm, NsmPort { ends });
        Ok(())
    }

    /// Assign a VM to an NSM (statically by the operator or dynamically by a
    /// load-balancing policy, §4.3).
    pub fn map_vm(&mut self, vm: VmId, nsm: NsmId) -> NkResult<()> {
        if !self.nsms.contains_key(&nsm) {
            return Err(NkError::NotFound);
        }
        self.mapping.insert(vm, nsm);
        Ok(())
    }

    /// Re-map a VM to a different NSM ("a user can switch her NSM on the
    /// fly", §3). Existing connections stay pinned to their old NSM; new
    /// connections use the new one.
    pub fn remap_vm(&mut self, vm: VmId, nsm: NsmId) -> NkResult<()> {
        self.map_vm(vm, nsm)
    }

    /// Hard-crash an NSM: its queue ends are dropped and every connection
    /// pinned to it is torn out of the table, with a [`NkError::ConnReset`]
    /// error event delivered to the owning guest socket. Returns the number
    /// of connections reset. The NSM id may be registered again afterwards
    /// (restart with fresh queues).
    pub fn crash_nsm(&mut self, nsm: NsmId) -> NkResult<usize> {
        self.nsms.remove(&nsm).ok_or(NkError::NotFound)?;
        let mut resets = 0;
        for key in self.table.remove_nsm(nsm) {
            let vm = VmId(key.entity);
            let Some(port) = self.vms.get_mut(&vm) else {
                continue;
            };
            resets += 1;
            let ev = Nqe::error_event(vm, key.queue_set, key.socket, NkError::ConnReset);
            let qs = key.queue_set.raw() as usize % port.ends.len().max(1);
            if port.ends[qs].respond(ev).is_ok() {
                if port.wake.wake() {
                    self.stats.wakeups += 1;
                }
            } else {
                // The guest's completion queue is full right now; the reset
                // notification must not be lost — park it for redelivery.
                port.pending_events.push_back(ev);
            }
        }
        self.stats.conn_resets += resets as u64;
        Ok(resets)
    }

    /// True when an NSM with this id is currently registered.
    pub fn has_nsm(&self, nsm: NsmId) -> bool {
        self.nsms.contains_key(&nsm)
    }

    /// The NSM currently mapped to serve a VM's new connections.
    pub fn nsm_of(&self, vm: VmId) -> Option<NsmId> {
        self.mapping.get(&vm).copied()
    }

    /// VMs currently mapped onto `nsm`, in id order.
    pub fn mapped_vms(&self, nsm: NsmId) -> Vec<VmId> {
        self.mapping
            .iter()
            .filter(|(_, n)| **n == nsm)
            .map(|(v, _)| *v)
            .collect()
    }

    /// Request NQEs parked in per-VM stall queues awaiting retry (throttled
    /// or backpressured). Used by conservation invariants in tests.
    pub fn stalled_nqes(&self) -> usize {
        self.vms
            .values()
            .map(|p| p.stalled.iter().map(|q| q.len()).sum::<usize>())
            .sum()
    }

    /// Request NQEs parked in one VM's stall queues. The control plane's
    /// load monitor attributes these to the NSM serving the VM as a
    /// backpressure signal.
    pub fn stalled_nqes_of(&self, vm: VmId) -> usize {
        self.vms
            .get(&vm)
            .map(|p| p.stalled.iter().map(|q| q.len()).sum())
            .unwrap_or(0)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Per-VM statistics.
    pub fn vm_stats(&self, vm: VmId) -> Option<VmSwitchStats> {
        self.vms.get(&vm).map(|p| p.stats)
    }

    /// Number of connections currently tracked.
    pub fn connections(&self) -> usize {
        self.table.len()
    }

    /// Connections a VM still has pinned, across all NSMs. This is the
    /// drain counter of a cross-host migration: the VM's source-side share
    /// retires when it reaches zero.
    pub fn pinned_connections_of(&self, vm: VmId) -> usize {
        self.table.connections_for_vm(vm)
    }

    /// Connections pinned to the `(vm, nsm)` share.
    pub fn pinned_connections(&self, vm: VmId, nsm: NsmId) -> usize {
        self.table.connections_for_vm_nsm(vm, nsm)
    }

    /// Connections pinned to `nsm` from any VM.
    pub fn pinned_connections_for_nsm(&self, nsm: NsmId) -> usize {
        self.table.connections_for_nsm(nsm)
    }

    /// Tenant id a VM registered with (used by shared-memory colocation
    /// detection).
    pub fn tenant_of(&self, vm: VmId) -> Option<u32> {
        self.vms.get(&vm).map(|p| p.tenant)
    }

    // ---- Warm migration: freeze window + entry transplant --------------------

    /// Open or close a warm-migration freeze window on a VM. Frozen VMs
    /// have no fresh requests popped from their queues; already-admitted
    /// work (stalled NQEs, NSM responses) keeps draining, so a few poll
    /// rounds after freezing the VM's pipeline is quiescent and
    /// snapshot-consistent.
    pub fn set_frozen(&mut self, vm: VmId, frozen: bool) {
        if frozen {
            self.frozen.insert(vm);
        } else {
            self.frozen.remove(&vm);
        }
    }

    /// True while the VM sits inside a freeze window.
    pub fn is_frozen(&self, vm: VmId) -> bool {
        self.frozen.contains(&vm)
    }

    /// Every connection-table entry of a VM, sorted (non-destructive).
    /// Warm migration pre-validates transplantability against this view
    /// before any state is torn out.
    pub fn vm_entries(&self, vm: VmId) -> Vec<(ConnKey, ConnEntry)> {
        self.table.entries_for_vm(vm)
    }

    /// Remove and return every connection-table entry of a VM — the
    /// extraction half of a warm migration. The entries unpin immediately
    /// (the drain counters drop to zero); the caller re-installs them on
    /// the destination host's engine.
    pub fn extract_vm_entries(&mut self, vm: VmId) -> Vec<(ConnKey, ConnEntry)> {
        self.table.extract_vm(vm)
    }

    /// The NSM queue set a tuple would pin to on `nsm` — resolved ahead of
    /// [`CoreEngine::install_entry`] so the ServiceLib side can be wired to
    /// the same set before the pin lands.
    pub fn nsm_queue_set_for(&self, key: &ConnKey, nsm: NsmId) -> NkResult<QueueSetId> {
        let sets = self
            .nsms
            .get(&nsm)
            .map(|n| n.ends.len().max(1))
            .ok_or(NkError::NotFound)?;
        Ok(Self::pick_nsm_queue_set(
            VmId(key.entity),
            key.queue_set,
            key.socket,
            sets,
        ))
    }

    /// Install a transplanted connection-table entry: the tuple pins to
    /// `nsm` with the NSM-side socket already known. The NSM queue set is
    /// chosen with the same hash new connections use, so transplanted and
    /// fresh tuples of one socket land identically; it is returned for the
    /// ServiceLib side to mirror.
    pub fn install_entry(
        &mut self,
        key: ConnKey,
        nsm: NsmId,
        nsm_socket: SocketId,
    ) -> NkResult<QueueSetId> {
        let sets = self
            .nsms
            .get(&nsm)
            .map(|n| n.ends.len().max(1))
            .ok_or(NkError::NotFound)?;
        let qs = Self::pick_nsm_queue_set(VmId(key.entity), key.queue_set, key.socket, sets);
        let entry = ConnEntry {
            nsm,
            nsm_queue_set: qs,
            nsm_socket: Some(nsm_socket),
        };
        if !self.table.install(key, entry) {
            return Err(NkError::AlreadyRegistered);
        }
        Ok(qs)
    }

    // ---- Share-lane decomposition --------------------------------------------

    /// Registered VM ids, in order — the census share-lane grouping runs
    /// over.
    pub fn vm_ids(&self) -> Vec<VmId> {
        self.vms.keys().copied().collect()
    }

    /// Every ⟨VM, NSM⟩ relation the engine holds: the VM's current mapping
    /// plus one edge per pinned tuple. Two NSMs reachable from one VM must
    /// land in the same share lane (they share the VM's ports, hugepage
    /// region and table entries), so lane grouping takes the connected
    /// components of exactly these edges.
    pub fn vm_nsm_edges(&self) -> Vec<(VmId, NsmId)> {
        let mut edges: Vec<(VmId, NsmId)> = self.mapping.iter().map(|(v, n)| (*v, *n)).collect();
        edges.extend(self.table.vm_nsm_pairs());
        edges
    }

    /// Carve one share group — `vms` with their ports, table entries,
    /// mapping and freeze flags, plus the `nsms` ports — out into a
    /// self-contained engine, to be polled on a worker thread as part of a
    /// share lane. The group must be closed under [`CoreEngine::vm_nsm_edges`]
    /// (no edge may cross into the remainder); given that, polling the
    /// extracted engine and the remainder in any interleaving is
    /// byte-identical to polling the whole engine, because the two halves
    /// touch disjoint ports, queues and table entries and id order is
    /// preserved within each half.
    ///
    /// The shard starts with zeroed [`EngineStats`];
    /// [`CoreEngine::absorb_shard`] adds them back.
    pub fn extract_shard(&mut self, vms: &[VmId], nsms: &[NsmId]) -> CoreEngine {
        let mut shard = CoreEngine::new(self.isolation.clone(), self.batch);
        for id in nsms {
            if let Some(port) = self.nsms.remove(id) {
                shard.nsms.insert(*id, port);
            }
        }
        for vm in vms {
            if let Some(port) = self.vms.remove(vm) {
                shard.vms.insert(*vm, port);
            }
            if let Some(nsm) = self.mapping.remove(vm) {
                shard.mapping.insert(*vm, nsm);
            }
            if self.frozen.remove(vm) {
                shard.frozen.insert(*vm);
            }
            for (key, entry) in self.table.extract_vm(*vm) {
                shard.table.install(key, entry);
            }
        }
        shard
    }

    /// Merge a shard produced by [`CoreEngine::extract_shard`] back in. The
    /// shard's switch counters are added; its `poll_rounds` is *not* — the
    /// resident engine is polled once per host round even while shards are
    /// out (it serves ungrouped VMs and parked crash events), so its own
    /// counter already tracks host rounds exactly as an undecomposed poll
    /// loop would.
    pub fn absorb_shard(&mut self, mut shard: CoreEngine) {
        self.nsms.append(&mut shard.nsms);
        let vms: Vec<VmId> = shard.vms.keys().copied().collect();
        for vm in vms {
            for (key, entry) in shard.table.extract_vm(vm) {
                self.table.install(key, entry);
            }
        }
        self.vms.append(&mut shard.vms);
        self.mapping.append(&mut shard.mapping);
        self.frozen.append(&mut shard.frozen);
        self.stats.nqes_switched += shard.stats.nqes_switched;
        self.stats.wakeups += shard.stats.wakeups;
        self.stats.conn_resets += shard.stats.conn_resets;
    }

    /// Hash a VM tuple onto one of `sets` NSM queue sets (§4.3 step 2) —
    /// shared by fresh pinning and warm-migration installation.
    fn pick_nsm_queue_set(
        vm: VmId,
        queue_set: QueueSetId,
        socket: SocketId,
        sets: usize,
    ) -> QueueSetId {
        let h = (vm.raw() as usize)
            .wrapping_mul(31)
            .wrapping_add(queue_set.raw() as usize)
            .wrapping_mul(31)
            .wrapping_add(socket.raw() as usize);
        QueueSetId((h % sets) as u8)
    }

    /// One polling round over every VM and NSM queue set (the paper's
    /// CoreEngine "uses polling across all queue sets to maximize
    /// performance", §4.3). Returns the number of NQEs switched.
    pub fn poll(&mut self, now_ns: u64) -> usize {
        self.stats.poll_rounds += 1;
        let mut switched = 0;
        switched += self.forward_requests(now_ns);
        switched += self.deliver_responses();
        self.stats.nqes_switched += switched as u64;
        switched
    }

    /// VM → NSM direction.
    fn forward_requests(&mut self, now_ns: u64) -> usize {
        let mut switched = 0;
        if self.vms.is_empty() {
            return 0;
        }
        // Fixed ascending-id order. (An earlier version rotated a
        // round-robin start cursor across VMs for fairness under
        // backpressure; the rotation coupled every VM's poll position to
        // the whole host's VM census, which made whole-engine and
        // per-share-group polling diverge. Fairness under a full NSM queue
        // now comes from the per-VM stall queues alone.)
        self.vm_scratch.clear();
        self.vm_scratch.extend(self.vms.keys().copied());
        for i in 0..self.vm_scratch.len() {
            let vm = self.vm_scratch[i];
            let Some(nsm_id) = self.mapping.get(&vm).copied() else {
                continue;
            };
            let Some(port) = self.vms.get_mut(&vm) else {
                continue;
            };
            let sets = port.ends.len();
            for qs in 0..sets {
                // Retry stalled NQEs first to preserve per-connection order.
                let mut blocked = false;
                while let Some(nqe) = port.stalled[qs].pop_front() {
                    match Self::try_forward(
                        &mut self.nsms,
                        &mut self.table,
                        port,
                        nsm_id,
                        nqe,
                        now_ns,
                    ) {
                        Forward::Done => switched += 1,
                        Forward::Dropped { woken } => {
                            switched += 1;
                            if woken {
                                self.stats.wakeups += 1;
                            }
                        }
                        Forward::Stalled(nqe) => {
                            port.stalled[qs].push_front(nqe);
                            blocked = true;
                            break;
                        }
                    }
                }
                if blocked {
                    continue;
                }
                // Inside a freeze window only already-admitted work drains;
                // fresh requests stay queued until the VM thaws (or its
                // queues move with it).
                if self.frozen.contains(&vm) {
                    continue;
                }
                'queue_set: loop {
                    let n = port.ends[qs].pop_requests(&mut self.scratch, self.batch);
                    if n == 0 {
                        break;
                    }
                    let mut stalled = false;
                    // Drained in place: `scratch`, `nsms`, `table` and the
                    // `port` borrow are disjoint fields, so no per-batch
                    // Vec is allocated on this hot path.
                    for nqe in self.scratch.drain(..) {
                        if stalled {
                            // Order must be preserved: once one NQE stalls,
                            // the rest of the batch queues up behind it.
                            port.stalled[qs].push_back(nqe);
                            continue;
                        }
                        match Self::try_forward(
                            &mut self.nsms,
                            &mut self.table,
                            port,
                            nsm_id,
                            nqe,
                            now_ns,
                        ) {
                            Forward::Done => switched += 1,
                            Forward::Dropped { woken } => {
                                switched += 1;
                                if woken {
                                    self.stats.wakeups += 1;
                                }
                            }
                            Forward::Stalled(nqe) => {
                                port.stalled[qs].push_back(nqe);
                                stalled = true;
                            }
                        }
                    }
                    if stalled {
                        break 'queue_set;
                    }
                }
            }
        }
        switched
    }

    /// Attempt to forward one request NQE. Throttled or backpressured NQEs
    /// are handed back for retry; NQEs whose target NSM no longer exists are
    /// dropped with an error reply so the guest fails fast instead of
    /// waiting on a queue nobody drains.
    fn try_forward(
        nsms: &mut BTreeMap<NsmId, NsmPort>,
        table: &mut ConnTable,
        port: &mut VmPort,
        nsm_id: NsmId,
        nqe: Nqe,
        now_ns: u64,
    ) -> Forward {
        // Isolation: bandwidth cap applies to payload bytes, op cap to NQEs.
        if let Some(bucket) = &mut port.rate_bucket {
            if nqe.size > 0 && !bucket.try_consume(nqe.size as f64, now_ns) {
                port.stats.throttled += 1;
                return Forward::Stalled(nqe);
            }
        }
        if let Some(bucket) = &mut port.ops_bucket {
            if !bucket.try_consume(1.0, now_ns) {
                port.stats.throttled += 1;
                return Forward::Stalled(nqe);
            }
        }
        // Existing connections stay pinned to the NSM recorded in the table;
        // new connections use the VM's current mapping (so remapping a VM on
        // the fly only affects new connections, §3).
        let key = ConnKey::vm(nqe.vm, nqe.queue_set, nqe.socket);
        let (target_nsm, target_qs) = match table.get(&key) {
            Some(e) => (e.nsm, e.nsm_queue_set),
            None => {
                let Some(sets) = nsms.get(&nsm_id).map(|n| n.ends.len().max(1)) else {
                    // The VM's mapped NSM crashed and nothing replaced it
                    // yet: fail the request instead of pinning the tuple to
                    // a dead NSM.
                    let woken = Self::drop_with_error(port, &nqe, NkError::NsmUnavailable);
                    return Forward::Dropped { woken };
                };
                // Hash the VM tuple onto an NSM queue set (§4.3 step 2).
                let qs = Self::pick_nsm_queue_set(nqe.vm, nqe.queue_set, nqe.socket, sets);
                table.get_or_insert_with(key, || (nsm_id, qs));
                (nsm_id, qs)
            }
        };
        let Some(nsm) = nsms.get_mut(&target_nsm) else {
            // Pinned NSM vanished between table lookup and delivery (crash
            // mid-batch): unpin and fail the request.
            table.remove(&key);
            let woken = Self::drop_with_error(port, &nqe, NkError::ConnReset);
            return Forward::Dropped { woken };
        };
        let target_qs = target_qs.raw() as usize % nsm.ends.len().max(1);
        match nsm.ends[target_qs].submit(nqe) {
            Ok(()) => {
                port.stats.nqes_forwarded += 1;
                port.stats.bytes_forwarded += nqe.size as u64;
                Forward::Done
            }
            Err(_) => Forward::Stalled(nqe),
        }
    }

    /// Drop a request whose NSM is gone: reclaim its payload and answer the
    /// guest with an error completion (or nothing for fire-and-forget ops).
    /// Returns whether the reply delivered a wakeup.
    fn drop_with_error(port: &mut VmPort, nqe: &Nqe, err: NkError) -> bool {
        port.stats.dropped += 1;
        // A dropped Send's payload sits in the shared hugepages and nobody
        // downstream will ever free it.
        if nqe.op == OpType::Send && !nqe.data.is_null() {
            if let Some(region) = &port.region {
                let _ = region.free(nqe.data);
            }
        }
        let Some(mut reply) = Nqe::completion_for(nqe, OpResult::Err(err), 0) else {
            return false;
        };
        // A failed Send still returns the reserved send-buffer budget.
        reply.size = nqe.size;
        let qs = nqe.queue_set.raw() as usize % port.ends.len().max(1);
        port.ends[qs].respond(reply).is_ok() && port.wake.wake()
    }

    /// NSM → VM direction.
    fn deliver_responses(&mut self) -> usize {
        let mut switched = 0;
        // Redeliver engine-originated events (crash resets) that found the
        // guest's completion queue full earlier.
        for port in self.vms.values_mut() {
            while let Some(ev) = port.pending_events.front().copied() {
                let qs = ev.queue_set.raw() as usize % port.ends.len().max(1);
                if port.ends[qs].respond(ev).is_err() {
                    break;
                }
                port.pending_events.pop_front();
                port.stats.nqes_delivered += 1;
                switched += 1;
                if port.wake.wake() {
                    self.stats.wakeups += 1;
                }
            }
        }
        for nsm in self.nsms.values_mut() {
            for end in nsm.ends.iter_mut() {
                loop {
                    let n = end.pop_responses(&mut self.scratch, self.batch);
                    if n == 0 {
                        break;
                    }
                    // Drained in place (disjoint field borrows), no
                    // per-batch allocation.
                    for nqe in self.scratch.drain(..) {
                        let Some(port) = self.vms.get_mut(&nqe.vm) else {
                            continue;
                        };
                        let qs = nqe.queue_set.raw() as usize % port.ends.len().max(1);
                        // Completion NQEs record the NSM socket id when they
                        // carry one (Figure 6, step 4).
                        if nqe.aux() != 0 {
                            let key = ConnKey::vm(nqe.vm, nqe.queue_set, nqe.socket);
                            self.table.complete(&key, nk_types::SocketId(nqe.aux()));
                        }
                        // A completed close ends the tuple's life: unpin it
                        // so per-(VM, NSM) drain counters actually reach
                        // zero instead of counting closed sockets forever.
                        if nqe.op == OpType::CloseComplete {
                            let key = ConnKey::vm(nqe.vm, nqe.queue_set, nqe.socket);
                            self.table.remove(&key);
                        }
                        if port.ends[qs].respond(nqe).is_ok() {
                            port.stats.nqes_delivered += 1;
                            switched += 1;
                            if port.wake.wake() {
                                self.stats.wakeups += 1;
                            }
                        }
                    }
                }
            }
        }
        switched
    }
}

impl nk_sim::Pollable for CoreEngine {
    /// One switching round; the host's scheduler repeats this until the
    /// engine (and everything else) is quiescent.
    fn poll(&mut self, now_ns: u64) -> usize {
        CoreEngine::poll(self, now_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nk_queue::queue_set_pair;
    use nk_types::{OpResult, OpType, SocketId};

    /// Wire one VM and one NSM through a CoreEngine; returns the guest-side
    /// requester end, the NSM-side responder end, and the engine.
    fn setup(
        isolation: IsolationPolicy,
        rate_limit: Option<f64>,
    ) -> (nk_queue::RequesterEnd, nk_queue::ResponderEnd, CoreEngine) {
        let (guest_end, vm_switch_end) = queue_set_pair(256);
        let (nsm_switch_end, nsm_end) = queue_set_pair(256);
        let mut ce = CoreEngine::new(isolation, 4);
        ce.register_vm(
            VmId(1),
            vec![vm_switch_end],
            WakeState::new(),
            0,
            rate_limit,
            None,
            0,
        )
        .unwrap();
        ce.register_nsm(NsmId(1), vec![nsm_switch_end]).unwrap();
        ce.map_vm(VmId(1), NsmId(1)).unwrap();
        (guest_end, nsm_end, ce)
    }

    fn request(op: OpType, sock: u32) -> Nqe {
        Nqe::new(op, VmId(1), QueueSetId(0), SocketId(sock))
    }

    #[test]
    fn switches_requests_and_responses() {
        let (mut guest, mut nsm, mut ce) = setup(IsolationPolicy::RoundRobin, None);
        guest.submit(request(OpType::SocketCreate, 7)).unwrap();
        ce.poll(0);
        let mut reqs = Vec::new();
        assert_eq!(nsm.pop_requests(&mut reqs, 8), 1);
        assert_eq!(reqs[0].op, OpType::SocketCreate);
        assert_eq!(ce.connections(), 1);

        // NSM answers; the engine routes it back to VM 1 and records the NSM
        // socket id from the completion's aux field.
        let comp = Nqe::completion_for(&reqs[0], OpResult::Ok, 42).unwrap();
        nsm.respond(comp).unwrap();
        ce.poll(0);
        let got = guest.pop_completion().unwrap();
        assert_eq!(got.op, OpType::SocketCreated);
        assert_eq!(got.aux(), 42);
        assert!(ce.stats().nqes_switched >= 2);
        assert_eq!(ce.vm_stats(VmId(1)).unwrap().nqes_forwarded, 1);
        assert_eq!(ce.vm_stats(VmId(1)).unwrap().nqes_delivered, 1);
    }

    #[test]
    fn unmapped_vm_is_not_polled() {
        let (guest, mut nsm, mut ce) = setup(IsolationPolicy::RoundRobin, None);
        ce.deregister_vm(VmId(1)).unwrap();
        // Re-register without a mapping.
        let (mut guest2, vm_end) = queue_set_pair(16);
        ce.register_vm(VmId(2), vec![vm_end], WakeState::new(), 0, None, None, 0)
            .unwrap();
        guest2.submit(request(OpType::SocketCreate, 1)).unwrap();
        ce.poll(0);
        let mut reqs = Vec::new();
        assert_eq!(nsm.pop_requests(&mut reqs, 8), 0);
        let _ = guest;
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let (_guest, _nsm, mut ce) = setup(IsolationPolicy::RoundRobin, None);
        let (_g, vm_end) = queue_set_pair(16);
        assert_eq!(
            ce.register_vm(VmId(1), vec![vm_end], WakeState::new(), 0, None, None, 0),
            Err(NkError::AlreadyRegistered)
        );
        let (nsm_end, _r) = queue_set_pair(16);
        assert_eq!(
            ce.register_nsm(NsmId(1), vec![nsm_end]),
            Err(NkError::AlreadyRegistered)
        );
        assert_eq!(ce.map_vm(VmId(1), NsmId(9)), Err(NkError::NotFound));
    }

    #[test]
    fn connections_pin_to_a_stable_nsm_queue_set() {
        // NSM with 4 queue sets; all NQEs of one socket go to the same set.
        let (mut guest, vm_end) = queue_set_pair(256);
        let mut nsm_guest_ends = Vec::new();
        let mut nsm_ends = Vec::new();
        for _ in 0..4 {
            let (a, b) = queue_set_pair(256);
            nsm_guest_ends.push(a);
            nsm_ends.push(b);
        }
        let mut ce = CoreEngine::new(IsolationPolicy::RoundRobin, 4);
        ce.register_vm(VmId(1), vec![vm_end], WakeState::new(), 0, None, None, 0)
            .unwrap();
        ce.register_nsm(NsmId(1), nsm_guest_ends).unwrap();
        ce.map_vm(VmId(1), NsmId(1)).unwrap();

        for _ in 0..8 {
            guest.submit(request(OpType::Connect, 5)).unwrap();
        }
        ce.poll(0);
        let mut non_empty = 0;
        for end in nsm_ends.iter_mut() {
            let mut v = Vec::new();
            if end.pop_requests(&mut v, 64) > 0 {
                non_empty += 1;
                assert_eq!(v.len(), 8);
            }
        }
        assert_eq!(non_empty, 1, "one socket must map to exactly one queue set");
    }

    #[test]
    fn rate_limit_throttles_send_nqes() {
        // 0.001 Gbps cap: the second large send in the same instant stalls.
        let (mut guest, mut nsm, mut ce) = setup(IsolationPolicy::RateLimited, Some(0.001));
        let payload_nqe = request(OpType::Send, 3).with_data(nk_types::DataHandle(0), 50_000);
        guest.submit(payload_nqe).unwrap();
        guest.submit(payload_nqe).unwrap();
        ce.poll(0);
        let mut reqs = Vec::new();
        let delivered_now = nsm.pop_requests(&mut reqs, 16);
        assert!(delivered_now < 2, "both sends slipped through the cap");
        assert!(ce.vm_stats(VmId(1)).unwrap().throttled >= 1);

        // After enough virtual time the bucket refills and the stalled NQE
        // goes through, so nothing is lost.
        ce.poll(3_000_000_000);
        let delivered_later = nsm.pop_requests(&mut reqs, 16);
        assert_eq!(delivered_now + delivered_later, 2);
    }

    #[test]
    fn ops_limit_caps_operations_per_second() {
        let (mut guest, mut nsm, mut ce) = setup(
            IsolationPolicy::OpsLimited {
                max_ops_per_sec: 100,
            },
            None,
        );
        for i in 0..50 {
            guest.submit(request(OpType::Connect, i)).unwrap();
        }
        // All submitted at t=0: only about the burst (1 op) goes through now.
        ce.poll(0);
        let mut reqs = Vec::new();
        let now = nsm.pop_requests(&mut reqs, 64);
        assert!(now <= 3, "{now} ops passed a 100/s cap instantaneously");
        // Over one second the rest drains at the configured rate.
        for ms in 1..=1000u64 {
            ce.poll(ms * 1_000_000);
        }
        let later = nsm.pop_requests(&mut reqs, 64);
        assert!(now + later >= 40, "only {} ops in a second", now + later);
    }

    #[test]
    fn wakeups_are_counted_when_device_is_armed() {
        let (mut guest, mut nsm, mut ce) = setup(IsolationPolicy::RoundRobin, None);
        guest.submit(request(OpType::SocketCreate, 1)).unwrap();
        ce.poll(0);
        let mut reqs = Vec::new();
        nsm.pop_requests(&mut reqs, 8);
        // Re-fetch the VM's wake flag: arm it as the guest device would when
        // it goes to sleep, then let the engine deliver a response.
        // (register_vm cloned the WakeState, so we reach it via the port.)
        // For the test we emulate by delivering twice: first without arming
        // (no wakeup counted), then after arming.
        let comp = Nqe::completion_for(&reqs[0], OpResult::Ok, 0).unwrap();
        nsm.respond(comp).unwrap();
        ce.poll(0);
        assert_eq!(ce.stats().wakeups, 0);
    }

    /// Crashing an NSM resets every connection pinned to it: the guest
    /// receives an ErrorEvent carrying ConnReset per connection, and the
    /// table forgets them.
    #[test]
    fn crash_nsm_resets_pinned_connections() {
        let (mut guest, mut nsm, mut ce) = setup(IsolationPolicy::RoundRobin, None);
        for sock in [1u32, 2, 3] {
            guest.submit(request(OpType::SocketCreate, sock)).unwrap();
        }
        ce.poll(0);
        let mut v = Vec::new();
        assert_eq!(nsm.pop_requests(&mut v, 8), 3);
        assert_eq!(ce.connections(), 3);

        let resets = ce.crash_nsm(NsmId(1)).unwrap();
        assert_eq!(resets, 3);
        assert_eq!(ce.connections(), 0);
        assert_eq!(ce.stats().conn_resets, 3);
        assert!(!ce.has_nsm(NsmId(1)));
        let mut seen = Vec::new();
        while let Some(ev) = guest.pop_completion() {
            assert_eq!(ev.op, OpType::ErrorEvent);
            assert_eq!(ev.result(), OpResult::Err(NkError::ConnReset));
            seen.push(ev.socket.raw());
        }
        seen.sort();
        assert_eq!(seen, vec![1, 2, 3]);
        assert_eq!(ce.crash_nsm(NsmId(1)), Err(NkError::NotFound));
    }

    /// Requests routed while the VM's mapped NSM is gone fail fast with an
    /// error completion instead of stalling forever, and a dropped Send's
    /// hugepage payload is reclaimed.
    #[test]
    fn requests_to_a_crashed_nsm_fail_fast_and_reclaim_payload() {
        let region = nk_shmem::HugepageRegion::with_capacity(1 << 20);
        let (mut guest, vm_end) = queue_set_pair(64);
        let (nsm_switch, _nsm_end) = queue_set_pair(64);
        let mut ce = CoreEngine::new(IsolationPolicy::RoundRobin, 4);
        ce.register_vm(
            VmId(1),
            vec![vm_end],
            WakeState::new(),
            0,
            None,
            Some(region.clone()),
            0,
        )
        .unwrap();
        ce.register_nsm(NsmId(1), vec![nsm_switch]).unwrap();
        ce.map_vm(VmId(1), NsmId(1)).unwrap();
        ce.crash_nsm(NsmId(1)).unwrap();

        let before = region.available();
        let handle = region.alloc_and_write(&[7u8; 4096]).unwrap();
        let send = request(OpType::Send, 9).with_data(handle, 4096);
        guest.submit(send).unwrap();
        guest.submit(request(OpType::SocketCreate, 10)).unwrap();
        let switched = ce.poll(0);
        assert_eq!(switched, 2, "dropped requests still count as work");
        assert_eq!(ce.vm_stats(VmId(1)).unwrap().dropped, 2);
        assert_eq!(ce.stalled_nqes(), 0, "nothing may stall on a dead NSM");
        assert_eq!(region.available(), before, "dropped payload leaked");

        let mut replies = Vec::new();
        while let Some(r) = guest.pop_completion() {
            replies.push(r);
        }
        assert_eq!(replies.len(), 2);
        assert!(replies
            .iter()
            .all(|r| r.result() == OpResult::Err(NkError::NsmUnavailable)));
        let send_reply = replies.iter().find(|r| r.op == OpType::SendComplete);
        assert_eq!(send_reply.unwrap().size, 4096, "send budget must come back");
        assert!(replies.iter().any(|r| r.op == OpType::SocketCreated));
        // The tuple must not be pinned to the dead NSM.
        assert_eq!(ce.connections(), 0);
    }

    /// After a crash the NSM id can be registered again (restart) and the
    /// datapath recovers for new work.
    #[test]
    fn nsm_id_is_reusable_after_crash() {
        let (mut guest, _old_nsm, mut ce) = setup(IsolationPolicy::RoundRobin, None);
        ce.crash_nsm(NsmId(1)).unwrap();
        let (fresh_switch, mut fresh_nsm) = queue_set_pair(64);
        ce.register_nsm(NsmId(1), vec![fresh_switch]).unwrap();
        assert!(ce.has_nsm(NsmId(1)));
        guest.submit(request(OpType::SocketCreate, 5)).unwrap();
        ce.poll(0);
        let mut v = Vec::new();
        assert_eq!(fresh_nsm.pop_requests(&mut v, 8), 1);
    }

    /// A completed close unpins the tuple: the pinned-connection counters
    /// that connection draining watches reach zero once sockets close.
    #[test]
    fn close_completion_unpins_the_connection() {
        let (mut guest, mut nsm, mut ce) = setup(IsolationPolicy::RoundRobin, None);
        guest.submit(request(OpType::Connect, 5)).unwrap();
        ce.poll(0);
        assert_eq!(ce.pinned_connections_of(VmId(1)), 1);
        assert_eq!(ce.pinned_connections(VmId(1), NsmId(1)), 1);
        assert_eq!(ce.pinned_connections_for_nsm(NsmId(1)), 1);

        let mut reqs = Vec::new();
        nsm.pop_requests(&mut reqs, 8);
        guest.submit(request(OpType::Close, 5)).unwrap();
        ce.poll(0);
        nsm.pop_requests(&mut reqs, 8);
        let close = reqs.last().unwrap();
        assert_eq!(close.op, OpType::Close);
        // Still pinned while the close is in flight — the completion must
        // route through the same NSM.
        assert_eq!(ce.pinned_connections(VmId(1), NsmId(1)), 1);

        let comp = Nqe::completion_for(close, OpResult::Ok, 0).unwrap();
        nsm.respond(comp).unwrap();
        ce.poll(0);
        assert_eq!(ce.pinned_connections_of(VmId(1)), 0);
        assert_eq!(ce.pinned_connections(VmId(1), NsmId(1)), 0);
        assert_eq!(ce.connections(), 0);
    }

    /// A frozen VM's fresh requests stay queued; thawing releases them.
    /// Responses still deliver during the freeze, so the pipeline drains
    /// towards the guest.
    #[test]
    fn freeze_window_parks_fresh_requests_and_thaw_releases_them() {
        let (mut guest, mut nsm, mut ce) = setup(IsolationPolicy::RoundRobin, None);
        guest.submit(request(OpType::SocketCreate, 1)).unwrap();
        ce.poll(0);
        let mut reqs = Vec::new();
        assert_eq!(nsm.pop_requests(&mut reqs, 8), 1);

        ce.set_frozen(VmId(1), true);
        assert!(ce.is_frozen(VmId(1)));
        guest.submit(request(OpType::SocketCreate, 2)).unwrap();
        ce.poll(0);
        assert_eq!(nsm.pop_requests(&mut reqs, 8), 0, "frozen VM forwarded");

        // In-flight responses still reach the frozen guest.
        let comp = Nqe::completion_for(&reqs[0], OpResult::Ok, 9).unwrap();
        nsm.respond(comp).unwrap();
        ce.poll(0);
        assert!(guest.pop_completion().is_some());

        ce.set_frozen(VmId(1), false);
        ce.poll(0);
        assert_eq!(nsm.pop_requests(&mut reqs, 8), 1, "thaw releases the queue");
    }

    /// Extraction unpins a VM's tuples (the warm migration's zero-drain
    /// property) and installation re-pins them with the same queue-set hash
    /// fresh connections would get.
    #[test]
    fn extract_and_install_transplant_table_entries() {
        let (mut guest, mut nsm, mut ce) = setup(IsolationPolicy::RoundRobin, None);
        for sock in [4u32, 7] {
            guest.submit(request(OpType::Connect, sock)).unwrap();
        }
        ce.poll(0);
        let mut reqs = Vec::new();
        nsm.pop_requests(&mut reqs, 8);
        for r in &reqs {
            let comp = Nqe::completion_for(r, OpResult::Ok, 100 + r.socket.raw()).unwrap();
            nsm.respond(comp).unwrap();
        }
        ce.poll(0);
        assert_eq!(ce.pinned_connections_of(VmId(1)), 2);

        let entries = ce.extract_vm_entries(VmId(1));
        assert_eq!(entries.len(), 2);
        assert_eq!(ce.pinned_connections_of(VmId(1)), 0, "extraction unpins");
        assert_eq!(ce.vm_entries(VmId(1)), vec![]);

        // Install on "the destination" (same engine stands in): the chosen
        // queue set matches what a fresh pin of the tuple would hash to.
        for (key, entry) in &entries {
            let qs = ce
                .install_entry(*key, NsmId(1), entry.nsm_socket.unwrap())
                .unwrap();
            assert_eq!(qs, entry.nsm_queue_set, "hash must be stable");
        }
        assert_eq!(ce.pinned_connections_of(VmId(1)), 2);
        assert_eq!(
            ce.install_entry(entries[0].0, NsmId(1), SocketId(1)),
            Err(NkError::AlreadyRegistered)
        );
        assert_eq!(
            ce.install_entry(entries[0].0, NsmId(9), SocketId(1)),
            Err(NkError::NotFound)
        );
    }

    #[test]
    fn mapped_vms_reports_current_mapping() {
        let (_guest, _nsm, mut ce) = setup(IsolationPolicy::RoundRobin, None);
        assert_eq!(ce.mapped_vms(NsmId(1)), vec![VmId(1)]);
        assert_eq!(ce.nsm_of(VmId(1)), Some(NsmId(1)));
        let (nsm2_switch, _n2) = queue_set_pair(16);
        ce.register_nsm(NsmId(2), vec![nsm2_switch]).unwrap();
        ce.remap_vm(VmId(1), NsmId(2)).unwrap();
        assert!(ce.mapped_vms(NsmId(1)).is_empty());
        assert_eq!(ce.mapped_vms(NsmId(2)), vec![VmId(1)]);
    }

    /// Polling an extracted share group and the remainder separately is
    /// byte-identical to polling the whole engine — the commutation property
    /// the share-lane decomposition rests on — and `absorb_shard` restores
    /// the undecomposed engine (stats, pins, datapath).
    #[test]
    fn extract_and_absorb_shard_match_whole_engine_poll() {
        // Two disjoint ⟨VM, NSM⟩ groups per engine; rig A polls whole,
        // rig B extracts group 2 as a shard and polls the halves separately.
        let rig = || {
            let mut guests = Vec::new();
            let mut nsm_ends = Vec::new();
            let mut ce = CoreEngine::new(IsolationPolicy::RoundRobin, 4);
            for id in 1u8..=2 {
                let (guest, vm_end) = queue_set_pair(64);
                let (nsm_switch, nsm_end) = queue_set_pair(64);
                ce.register_vm(VmId(id), vec![vm_end], WakeState::new(), 0, None, None, 0)
                    .unwrap();
                ce.register_nsm(NsmId(id), vec![nsm_switch]).unwrap();
                ce.map_vm(VmId(id), NsmId(id)).unwrap();
                guests.push(guest);
                nsm_ends.push(nsm_end);
            }
            (guests, nsm_ends, ce)
        };
        let (mut guests_a, mut nsms_a, mut whole) = rig();
        let (mut guests_b, mut nsms_b, mut host) = rig();

        let submit = |guests: &mut Vec<nk_queue::RequesterEnd>| {
            for (i, sock) in [(0usize, 5u32), (1, 6), (1, 7)] {
                guests[i]
                    .submit(Nqe::new(
                        OpType::Connect,
                        VmId(i as u8 + 1),
                        QueueSetId(0),
                        SocketId(sock),
                    ))
                    .unwrap();
            }
        };
        submit(&mut guests_a);
        submit(&mut guests_b);

        // The census and edge views feed lane grouping.
        assert_eq!(host.vm_ids(), vec![VmId(1), VmId(2)]);
        let mut edges = host.vm_nsm_edges();
        edges.sort();
        assert_eq!(edges, vec![(VmId(1), NsmId(1)), (VmId(2), NsmId(2))]);

        whole.poll(0);
        let mut shard = host.extract_shard(&[VmId(2)], &[NsmId(2)]);
        shard.poll(0);
        host.poll(0);

        // Same requests arrive at the NSM side either way; answer them so
        // the response direction is exercised too.
        let pump = |nsms: &mut Vec<nk_queue::ResponderEnd>| {
            for end in nsms.iter_mut() {
                let mut reqs = Vec::new();
                end.pop_requests(&mut reqs, 16);
                for r in &reqs {
                    let comp = Nqe::completion_for(r, OpResult::Ok, 100 + r.socket.raw()).unwrap();
                    end.respond(comp).unwrap();
                }
            }
        };
        pump(&mut nsms_a);
        pump(&mut nsms_b);
        whole.poll(0);
        shard.poll(0);
        host.poll(0);
        host.absorb_shard(shard);

        // Pin edges now exist in the table; both views must agree.
        let mut ea = whole.vm_nsm_edges();
        ea.sort();
        let mut eb = host.vm_nsm_edges();
        eb.sort();
        assert_eq!(ea, eb);
        assert_eq!(whole.connections(), host.connections());
        assert_eq!(whole.stats().nqes_switched, host.stats().nqes_switched);
        assert_eq!(whole.stats().wakeups, host.stats().wakeups);
        assert_eq!(whole.stats().conn_resets, host.stats().conn_resets);
        for id in 1u8..=2 {
            assert_eq!(
                whole.vm_stats(VmId(id)).unwrap(),
                host.vm_stats(VmId(id)).unwrap(),
                "vm {id} stats diverged"
            );
        }
        // Guests see identical completion streams.
        for (ga, gb) in guests_a.iter_mut().zip(guests_b.iter_mut()) {
            loop {
                let (a, b) = (ga.pop_completion(), gb.pop_completion());
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
        // The absorbed engine keeps switching: a close on the re-absorbed
        // group still routes to its pinned NSM.
        guests_b[1]
            .submit(Nqe::new(OpType::Close, VmId(2), QueueSetId(0), SocketId(6)))
            .unwrap();
        host.poll(0);
        let mut v = Vec::new();
        assert_eq!(nsms_b[1].pop_requests(&mut v, 8), 1);
        assert_eq!(v[0].op, OpType::Close);
    }

    #[test]
    fn remap_vm_directs_new_connections_to_new_nsm() {
        let (mut guest, mut nsm1, mut ce) = setup(IsolationPolicy::RoundRobin, None);
        // Second NSM.
        let (nsm2_switch, mut nsm2) = queue_set_pair(64);
        ce.register_nsm(NsmId(2), vec![nsm2_switch]).unwrap();

        guest.submit(request(OpType::SocketCreate, 1)).unwrap();
        ce.poll(0);
        let mut v = Vec::new();
        assert_eq!(nsm1.pop_requests(&mut v, 8), 1);

        // Switch the VM to NSM 2 on the fly; a *new* socket goes there.
        ce.remap_vm(VmId(1), NsmId(2)).unwrap();
        guest.submit(request(OpType::SocketCreate, 2)).unwrap();
        ce.poll(0);
        assert_eq!(nsm2.pop_requests(&mut v, 8), 1);
        // The old socket stays pinned to NSM 1 through the connection table.
        guest.submit(request(OpType::Close, 1)).unwrap();
        ce.poll(0);
        let mut v1 = Vec::new();
        assert_eq!(nsm1.pop_requests(&mut v1, 8), 1);
        assert_eq!(v1[0].op, OpType::Close);
    }
}
