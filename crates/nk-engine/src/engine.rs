//! The NQE switching engine.

use crate::table::ConnTable;
use nk_queue::{RequesterEnd, ResponderEnd, WakeState};
use nk_sim::TokenBucket;
use nk_types::{ConnKey, IsolationPolicy, NkError, NkResult, Nqe, NsmId, QueueSetId, VmId};
use std::collections::HashMap;

/// Per-VM switching statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct VmSwitchStats {
    /// Request NQEs forwarded to NSMs.
    pub nqes_forwarded: u64,
    /// Response NQEs delivered back to the VM.
    pub nqes_delivered: u64,
    /// Payload bytes forwarded on the send path.
    pub bytes_forwarded: u64,
    /// NQEs deferred by rate limiting (they stay queued and are retried).
    pub throttled: u64,
}

/// Aggregate CoreEngine statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EngineStats {
    /// Total NQEs switched in both directions.
    pub nqes_switched: u64,
    /// Poll batches executed.
    pub poll_rounds: u64,
    /// Virtual interrupts (wake-ups) delivered to guest NK devices.
    pub wakeups: u64,
}

struct VmPort {
    /// Switch-side ends of the VM's queue sets (one per vCPU).
    ends: Vec<ResponderEnd>,
    wake: WakeState,
    /// Egress bandwidth limiter (bytes), when the policy asks for one.
    rate_bucket: Option<TokenBucket>,
    /// Egress operation limiter (NQEs per second), when the policy asks.
    ops_bucket: Option<TokenBucket>,
    /// NQEs that could not be forwarded yet (rate limit or full NSM queue);
    /// retried first, in order, on later polls.
    stalled: Vec<std::collections::VecDeque<Nqe>>,
    tenant: u32,
    stats: VmSwitchStats,
}

struct NsmPort {
    /// Switch-side ends of the NSM's queue sets (one per vCPU).
    ends: Vec<RequesterEnd>,
}

/// The CoreEngine software switch.
pub struct CoreEngine {
    vms: HashMap<VmId, VmPort>,
    nsms: HashMap<NsmId, NsmPort>,
    mapping: HashMap<VmId, NsmId>,
    table: ConnTable,
    isolation: IsolationPolicy,
    batch: usize,
    /// Round-robin order of VM polling.
    vm_order: Vec<VmId>,
    rr_cursor: usize,
    stats: EngineStats,
    scratch: Vec<Nqe>,
}

impl CoreEngine {
    /// A CoreEngine with the given isolation policy and NQE batch size.
    pub fn new(isolation: IsolationPolicy, batch: usize) -> Self {
        CoreEngine {
            vms: HashMap::new(),
            nsms: HashMap::new(),
            mapping: HashMap::new(),
            table: ConnTable::new(),
            isolation,
            batch: batch.max(1),
            vm_order: Vec::new(),
            rr_cursor: 0,
            stats: EngineStats::default(),
            scratch: Vec::new(),
        }
    }

    /// Register a VM's NK device (switch-side queue ends plus its wake flag).
    pub fn register_vm(
        &mut self,
        vm: VmId,
        ends: Vec<ResponderEnd>,
        wake: WakeState,
        tenant: u32,
        rate_limit_gbps: Option<f64>,
        now_ns: u64,
    ) -> NkResult<()> {
        if self.vms.contains_key(&vm) {
            return Err(NkError::AlreadyRegistered);
        }
        let rate_bucket = match (&self.isolation, rate_limit_gbps) {
            (IsolationPolicy::RateLimited, Some(gbps)) => {
                let bytes_per_sec = gbps * 1e9 / 8.0;
                // The burst must cover at least one maximum-size data chunk,
                // otherwise large sends could never pass the cap.
                let burst = (bytes_per_sec / 1_000.0).max(64.0 * 1024.0);
                Some(TokenBucket::new(bytes_per_sec, burst, now_ns))
            }
            _ => None,
        };
        let ops_bucket = match &self.isolation {
            IsolationPolicy::OpsLimited { max_ops_per_sec } => Some(TokenBucket::new(
                *max_ops_per_sec as f64,
                (*max_ops_per_sec as f64 / 100.0).max(1.0),
                now_ns,
            )),
            _ => None,
        };
        let stalled = (0..ends.len())
            .map(|_| std::collections::VecDeque::new())
            .collect();
        self.vms.insert(
            vm,
            VmPort {
                ends,
                wake,
                rate_bucket,
                ops_bucket,
                stalled,
                tenant,
                stats: VmSwitchStats::default(),
            },
        );
        self.vm_order.push(vm);
        Ok(())
    }

    /// Deregister a VM: its queue ends are dropped and its connections are
    /// removed from the table.
    pub fn deregister_vm(&mut self, vm: VmId) -> NkResult<()> {
        self.vms.remove(&vm).ok_or(NkError::NotFound)?;
        self.vm_order.retain(|v| *v != vm);
        self.mapping.remove(&vm);
        self.table.remove_vm(vm);
        Ok(())
    }

    /// Register an NSM's NK device (switch-side queue ends).
    pub fn register_nsm(&mut self, nsm: NsmId, ends: Vec<RequesterEnd>) -> NkResult<()> {
        if self.nsms.contains_key(&nsm) {
            return Err(NkError::AlreadyRegistered);
        }
        self.nsms.insert(nsm, NsmPort { ends });
        Ok(())
    }

    /// Assign a VM to an NSM (statically by the operator or dynamically by a
    /// load-balancing policy, §4.3).
    pub fn map_vm(&mut self, vm: VmId, nsm: NsmId) -> NkResult<()> {
        if !self.nsms.contains_key(&nsm) {
            return Err(NkError::NotFound);
        }
        self.mapping.insert(vm, nsm);
        Ok(())
    }

    /// Re-map a VM to a different NSM ("a user can switch her NSM on the
    /// fly", §3). Existing connections stay pinned to their old NSM; new
    /// connections use the new one.
    pub fn remap_vm(&mut self, vm: VmId, nsm: NsmId) -> NkResult<()> {
        self.map_vm(vm, nsm)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Per-VM statistics.
    pub fn vm_stats(&self, vm: VmId) -> Option<VmSwitchStats> {
        self.vms.get(&vm).map(|p| p.stats)
    }

    /// Number of connections currently tracked.
    pub fn connections(&self) -> usize {
        self.table.len()
    }

    /// Tenant id a VM registered with (used by shared-memory colocation
    /// detection).
    pub fn tenant_of(&self, vm: VmId) -> Option<u32> {
        self.vms.get(&vm).map(|p| p.tenant)
    }

    /// One polling round over every VM and NSM queue set (the paper's
    /// CoreEngine "uses polling across all queue sets to maximize
    /// performance", §4.3). Returns the number of NQEs switched.
    pub fn poll(&mut self, now_ns: u64) -> usize {
        self.stats.poll_rounds += 1;
        let mut switched = 0;
        switched += self.forward_requests(now_ns);
        switched += self.deliver_responses();
        self.stats.nqes_switched += switched as u64;
        switched
    }

    /// VM → NSM direction.
    fn forward_requests(&mut self, now_ns: u64) -> usize {
        let mut switched = 0;
        if self.vm_order.is_empty() {
            return 0;
        }
        // Round-robin start position for fairness across VMs.
        let start = self.rr_cursor % self.vm_order.len();
        self.rr_cursor = self.rr_cursor.wrapping_add(1);

        for i in 0..self.vm_order.len() {
            let vm = self.vm_order[(start + i) % self.vm_order.len()];
            let Some(nsm_id) = self.mapping.get(&vm).copied() else {
                continue;
            };
            let Some(port) = self.vms.get_mut(&vm) else {
                continue;
            };
            let sets = port.ends.len();
            for qs in 0..sets {
                // Retry stalled NQEs first to preserve per-connection order.
                let mut blocked = false;
                while let Some(nqe) = port.stalled[qs].pop_front() {
                    match Self::try_forward(
                        &mut self.nsms,
                        &mut self.table,
                        port,
                        nsm_id,
                        nqe,
                        now_ns,
                    ) {
                        Ok(()) => switched += 1,
                        Err(nqe) => {
                            port.stalled[qs].push_front(nqe);
                            blocked = true;
                            break;
                        }
                    }
                }
                if blocked {
                    continue;
                }
                'queue_set: loop {
                    let n = port.ends[qs].pop_requests(&mut self.scratch, self.batch);
                    if n == 0 {
                        break;
                    }
                    let mut stalled = false;
                    // Drained in place: `scratch`, `nsms`, `table` and the
                    // `port` borrow are disjoint fields, so no per-batch
                    // Vec is allocated on this hot path.
                    for nqe in self.scratch.drain(..) {
                        if stalled {
                            // Order must be preserved: once one NQE stalls,
                            // the rest of the batch queues up behind it.
                            port.stalled[qs].push_back(nqe);
                            continue;
                        }
                        match Self::try_forward(
                            &mut self.nsms,
                            &mut self.table,
                            port,
                            nsm_id,
                            nqe,
                            now_ns,
                        ) {
                            Ok(()) => switched += 1,
                            Err(nqe) => {
                                port.stalled[qs].push_back(nqe);
                                stalled = true;
                            }
                        }
                    }
                    if stalled {
                        break 'queue_set;
                    }
                }
            }
        }
        switched
    }

    /// Attempt to forward one request NQE; hands the NQE back on throttle or
    /// backpressure so the caller can retry later.
    fn try_forward(
        nsms: &mut HashMap<NsmId, NsmPort>,
        table: &mut ConnTable,
        port: &mut VmPort,
        nsm_id: NsmId,
        nqe: Nqe,
        now_ns: u64,
    ) -> Result<(), Nqe> {
        // Isolation: bandwidth cap applies to payload bytes, op cap to NQEs.
        if let Some(bucket) = &mut port.rate_bucket {
            if nqe.size > 0 && !bucket.try_consume(nqe.size as f64, now_ns) {
                port.stats.throttled += 1;
                return Err(nqe);
            }
        }
        if let Some(bucket) = &mut port.ops_bucket {
            if !bucket.try_consume(1.0, now_ns) {
                port.stats.throttled += 1;
                return Err(nqe);
            }
        }
        // Existing connections stay pinned to the NSM recorded in the table;
        // new connections use the VM's current mapping (so remapping a VM on
        // the fly only affects new connections, §3).
        let key = ConnKey::vm(nqe.vm, nqe.queue_set, nqe.socket);
        let (target_nsm, target_qs) = match table.get(&key) {
            Some(e) => (e.nsm, e.nsm_queue_set),
            None => {
                let sets = nsms.get(&nsm_id).map(|n| n.ends.len().max(1)).unwrap_or(1);
                // Hash the VM tuple onto an NSM queue set (§4.3 step 2).
                let h = (nqe.vm.raw() as usize)
                    .wrapping_mul(31)
                    .wrapping_add(nqe.queue_set.raw() as usize)
                    .wrapping_mul(31)
                    .wrapping_add(nqe.socket.raw() as usize);
                let qs = QueueSetId((h % sets) as u8);
                table.get_or_insert_with(key, || (nsm_id, qs));
                (nsm_id, qs)
            }
        };
        let Some(nsm) = nsms.get_mut(&target_nsm) else {
            return Err(nqe);
        };
        let target_qs = target_qs.raw() as usize % nsm.ends.len().max(1);
        match nsm.ends[target_qs].submit(nqe) {
            Ok(()) => {
                port.stats.nqes_forwarded += 1;
                port.stats.bytes_forwarded += nqe.size as u64;
                Ok(())
            }
            Err(_) => Err(nqe),
        }
    }

    /// NSM → VM direction.
    fn deliver_responses(&mut self) -> usize {
        let mut switched = 0;
        for nsm in self.nsms.values_mut() {
            for end in nsm.ends.iter_mut() {
                loop {
                    let n = end.pop_responses(&mut self.scratch, self.batch);
                    if n == 0 {
                        break;
                    }
                    // Drained in place (disjoint field borrows), no
                    // per-batch allocation.
                    for nqe in self.scratch.drain(..) {
                        let Some(port) = self.vms.get_mut(&nqe.vm) else {
                            continue;
                        };
                        let qs = nqe.queue_set.raw() as usize % port.ends.len().max(1);
                        // Completion NQEs record the NSM socket id when they
                        // carry one (Figure 6, step 4).
                        if nqe.aux() != 0 {
                            let key = ConnKey::vm(nqe.vm, nqe.queue_set, nqe.socket);
                            self.table.complete(&key, nk_types::SocketId(nqe.aux()));
                        }
                        if port.ends[qs].respond(nqe).is_ok() {
                            port.stats.nqes_delivered += 1;
                            switched += 1;
                            if port.wake.wake() {
                                self.stats.wakeups += 1;
                            }
                        }
                    }
                }
            }
        }
        switched
    }
}

impl nk_sim::Pollable for CoreEngine {
    /// One switching round; the host's scheduler repeats this until the
    /// engine (and everything else) is quiescent.
    fn poll(&mut self, now_ns: u64) -> usize {
        CoreEngine::poll(self, now_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nk_queue::queue_set_pair;
    use nk_types::{OpResult, OpType, SocketId};

    /// Wire one VM and one NSM through a CoreEngine; returns the guest-side
    /// requester end, the NSM-side responder end, and the engine.
    fn setup(
        isolation: IsolationPolicy,
        rate_limit: Option<f64>,
    ) -> (nk_queue::RequesterEnd, nk_queue::ResponderEnd, CoreEngine) {
        let (guest_end, vm_switch_end) = queue_set_pair(256);
        let (nsm_switch_end, nsm_end) = queue_set_pair(256);
        let mut ce = CoreEngine::new(isolation, 4);
        ce.register_vm(
            VmId(1),
            vec![vm_switch_end],
            WakeState::new(),
            0,
            rate_limit,
            0,
        )
        .unwrap();
        ce.register_nsm(NsmId(1), vec![nsm_switch_end]).unwrap();
        ce.map_vm(VmId(1), NsmId(1)).unwrap();
        (guest_end, nsm_end, ce)
    }

    fn request(op: OpType, sock: u32) -> Nqe {
        Nqe::new(op, VmId(1), QueueSetId(0), SocketId(sock))
    }

    #[test]
    fn switches_requests_and_responses() {
        let (mut guest, mut nsm, mut ce) = setup(IsolationPolicy::RoundRobin, None);
        guest.submit(request(OpType::SocketCreate, 7)).unwrap();
        ce.poll(0);
        let mut reqs = Vec::new();
        assert_eq!(nsm.pop_requests(&mut reqs, 8), 1);
        assert_eq!(reqs[0].op, OpType::SocketCreate);
        assert_eq!(ce.connections(), 1);

        // NSM answers; the engine routes it back to VM 1 and records the NSM
        // socket id from the completion's aux field.
        let comp = Nqe::completion_for(&reqs[0], OpResult::Ok, 42).unwrap();
        nsm.respond(comp).unwrap();
        ce.poll(0);
        let got = guest.pop_completion().unwrap();
        assert_eq!(got.op, OpType::SocketCreated);
        assert_eq!(got.aux(), 42);
        assert!(ce.stats().nqes_switched >= 2);
        assert_eq!(ce.vm_stats(VmId(1)).unwrap().nqes_forwarded, 1);
        assert_eq!(ce.vm_stats(VmId(1)).unwrap().nqes_delivered, 1);
    }

    #[test]
    fn unmapped_vm_is_not_polled() {
        let (guest, mut nsm, mut ce) = setup(IsolationPolicy::RoundRobin, None);
        ce.deregister_vm(VmId(1)).unwrap();
        // Re-register without a mapping.
        let (mut guest2, vm_end) = queue_set_pair(16);
        ce.register_vm(VmId(2), vec![vm_end], WakeState::new(), 0, None, 0)
            .unwrap();
        guest2.submit(request(OpType::SocketCreate, 1)).unwrap();
        ce.poll(0);
        let mut reqs = Vec::new();
        assert_eq!(nsm.pop_requests(&mut reqs, 8), 0);
        let _ = guest;
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let (_guest, _nsm, mut ce) = setup(IsolationPolicy::RoundRobin, None);
        let (_g, vm_end) = queue_set_pair(16);
        assert_eq!(
            ce.register_vm(VmId(1), vec![vm_end], WakeState::new(), 0, None, 0),
            Err(NkError::AlreadyRegistered)
        );
        let (nsm_end, _r) = queue_set_pair(16);
        assert_eq!(
            ce.register_nsm(NsmId(1), vec![nsm_end]),
            Err(NkError::AlreadyRegistered)
        );
        assert_eq!(ce.map_vm(VmId(1), NsmId(9)), Err(NkError::NotFound));
    }

    #[test]
    fn connections_pin_to_a_stable_nsm_queue_set() {
        // NSM with 4 queue sets; all NQEs of one socket go to the same set.
        let (mut guest, vm_end) = queue_set_pair(256);
        let mut nsm_guest_ends = Vec::new();
        let mut nsm_ends = Vec::new();
        for _ in 0..4 {
            let (a, b) = queue_set_pair(256);
            nsm_guest_ends.push(a);
            nsm_ends.push(b);
        }
        let mut ce = CoreEngine::new(IsolationPolicy::RoundRobin, 4);
        ce.register_vm(VmId(1), vec![vm_end], WakeState::new(), 0, None, 0)
            .unwrap();
        ce.register_nsm(NsmId(1), nsm_guest_ends).unwrap();
        ce.map_vm(VmId(1), NsmId(1)).unwrap();

        for _ in 0..8 {
            guest.submit(request(OpType::Connect, 5)).unwrap();
        }
        ce.poll(0);
        let mut non_empty = 0;
        for end in nsm_ends.iter_mut() {
            let mut v = Vec::new();
            if end.pop_requests(&mut v, 64) > 0 {
                non_empty += 1;
                assert_eq!(v.len(), 8);
            }
        }
        assert_eq!(non_empty, 1, "one socket must map to exactly one queue set");
    }

    #[test]
    fn rate_limit_throttles_send_nqes() {
        // 0.001 Gbps cap: the second large send in the same instant stalls.
        let (mut guest, mut nsm, mut ce) = setup(IsolationPolicy::RateLimited, Some(0.001));
        let payload_nqe = request(OpType::Send, 3).with_data(nk_types::DataHandle(0), 50_000);
        guest.submit(payload_nqe).unwrap();
        guest.submit(payload_nqe).unwrap();
        ce.poll(0);
        let mut reqs = Vec::new();
        let delivered_now = nsm.pop_requests(&mut reqs, 16);
        assert!(delivered_now < 2, "both sends slipped through the cap");
        assert!(ce.vm_stats(VmId(1)).unwrap().throttled >= 1);

        // After enough virtual time the bucket refills and the stalled NQE
        // goes through, so nothing is lost.
        ce.poll(3_000_000_000);
        let delivered_later = nsm.pop_requests(&mut reqs, 16);
        assert_eq!(delivered_now + delivered_later, 2);
    }

    #[test]
    fn ops_limit_caps_operations_per_second() {
        let (mut guest, mut nsm, mut ce) = setup(
            IsolationPolicy::OpsLimited {
                max_ops_per_sec: 100,
            },
            None,
        );
        for i in 0..50 {
            guest.submit(request(OpType::Connect, i)).unwrap();
        }
        // All submitted at t=0: only about the burst (1 op) goes through now.
        ce.poll(0);
        let mut reqs = Vec::new();
        let now = nsm.pop_requests(&mut reqs, 64);
        assert!(now <= 3, "{now} ops passed a 100/s cap instantaneously");
        // Over one second the rest drains at the configured rate.
        for ms in 1..=1000u64 {
            ce.poll(ms * 1_000_000);
        }
        let later = nsm.pop_requests(&mut reqs, 64);
        assert!(now + later >= 40, "only {} ops in a second", now + later);
    }

    #[test]
    fn wakeups_are_counted_when_device_is_armed() {
        let (mut guest, mut nsm, mut ce) = setup(IsolationPolicy::RoundRobin, None);
        guest.submit(request(OpType::SocketCreate, 1)).unwrap();
        ce.poll(0);
        let mut reqs = Vec::new();
        nsm.pop_requests(&mut reqs, 8);
        // Re-fetch the VM's wake flag: arm it as the guest device would when
        // it goes to sleep, then let the engine deliver a response.
        // (register_vm cloned the WakeState, so we reach it via the port.)
        // For the test we emulate by delivering twice: first without arming
        // (no wakeup counted), then after arming.
        let comp = Nqe::completion_for(&reqs[0], OpResult::Ok, 0).unwrap();
        nsm.respond(comp).unwrap();
        ce.poll(0);
        assert_eq!(ce.stats().wakeups, 0);
    }

    #[test]
    fn remap_vm_directs_new_connections_to_new_nsm() {
        let (mut guest, mut nsm1, mut ce) = setup(IsolationPolicy::RoundRobin, None);
        // Second NSM.
        let (nsm2_switch, mut nsm2) = queue_set_pair(64);
        ce.register_nsm(NsmId(2), vec![nsm2_switch]).unwrap();

        guest.submit(request(OpType::SocketCreate, 1)).unwrap();
        ce.poll(0);
        let mut v = Vec::new();
        assert_eq!(nsm1.pop_requests(&mut v, 8), 1);

        // Switch the VM to NSM 2 on the fly; a *new* socket goes there.
        ce.remap_vm(VmId(1), NsmId(2)).unwrap();
        guest.submit(request(OpType::SocketCreate, 2)).unwrap();
        ce.poll(0);
        assert_eq!(nsm2.pop_requests(&mut v, 8), 1);
        // The old socket stays pinned to NSM 1 through the connection table.
        guest.submit(request(OpType::Close, 1)).unwrap();
        ce.poll(0);
        let mut v1 = Vec::new();
        assert_eq!(nsm1.pop_requests(&mut v1, 8), 1);
        assert_eq!(v1[0].op, OpType::Close);
    }
}
