//! Per-epoch request-completion latency, sampled from metric deltas.
//!
//! The datapath does not stamp individual NQEs (the paper's queue elements
//! are 48-byte descriptors; growing them for telemetry would change the
//! thing being measured). Instead each host's [`HostFeed`] derives latency
//! from the engine's per-VM switch counters at every step close: newly
//! *forwarded* request NQEs enqueue the current virtual time, newly
//! *delivered* completion NQEs dequeue the oldest stamp and record
//! `now - stamp`. FIFO matching over counter deltas is an approximation —
//! unsolicited deliveries (receive pushes) consume stamps too — but it is
//! cheap, needs no datapath surgery, and is exactly as deterministic as
//! the counters it reads: requests answered within the step record 0, a
//! handshake crossing the wire records whole step multiples, and a VM
//! starved behind a frozen or overloaded NSM records the stall the
//! operator actually cares about.
//!
//! At each recorder epoch boundary the cluster drains every host's
//! histogram in `HostId` order at the round barrier and seals an
//! [`EpochLatency`]: per-host summaries plus the cluster-wide merge
//! ([`nk_sim::Histogram::merge`] preserves moments and min/max exactly).

use nk_sim::Histogram;
use nk_types::{HostId, VmId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Stamps a feed will queue per VM before dropping new ones: bounds memory
/// against a VM whose requests never see completions (e.g. consumed-receive
/// notifications, which have no reply by design).
const OUTSTANDING_CAP: usize = 4096;

/// Headline quantiles of one histogram, in the recorded unit (ns).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Median, rounded down to whole ns.
    pub p50_ns: u64,
    /// 99th percentile, rounded down to whole ns.
    pub p99_ns: u64,
    /// Largest sample.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Summarize a histogram of ns samples.
    pub fn of(hist: &Histogram) -> Self {
        LatencySummary {
            count: hist.count(),
            p50_ns: hist.quantile(0.5) as u64,
            p99_ns: hist.quantile(0.99) as u64,
            max_ns: hist.max() as u64,
        }
    }
}

/// One sealed recorder epoch: per-host and cluster-wide completion-latency
/// summaries over `[start_ns, end_ns)`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EpochLatency {
    /// Recorder epoch index (independent of the placement epoch: latency
    /// aggregation runs on its own virtual-time cadence so it works
    /// without a placement policy).
    pub epoch: u64,
    /// Virtual time the epoch opened.
    pub start_ns: u64,
    /// Virtual time the epoch sealed.
    pub end_ns: u64,
    /// Cluster-wide summary (the merge of every host's histogram).
    pub cluster: LatencySummary,
    /// Per-host summaries, ascending `HostId`.
    pub hosts: Vec<(HostId, LatencySummary)>,
}

/// A host's capture feed: the per-host half of the flight recorder.
///
/// Lives inside `NetKernelHost` and is written only by the host's own step
/// (possibly on a worker shard); the cluster coordinator drains it at the
/// round barrier in `HostId` order, which is what keeps the merged record
/// independent of the thread count. A bare host (no cluster) reads its own
/// feed directly via [`HostFeed::summary`].
#[derive(Clone, Debug)]
pub struct HostFeed {
    enabled: bool,
    /// Last observed per-VM (forwarded, delivered) counters.
    prev: BTreeMap<VmId, (u64, u64)>,
    /// Virtual-time stamps of forwarded-but-unmatched request NQEs.
    outstanding: BTreeMap<VmId, VecDeque<u64>>,
    /// Latency samples (ns) since the feed was last drained.
    hist: Histogram,
    /// Fault applications since the feed was last drained.
    faults: Vec<(u64, u32)>,
}

impl Default for HostFeed {
    fn default() -> Self {
        Self::new()
    }
}

impl HostFeed {
    /// An enabled, empty feed.
    pub fn new() -> Self {
        HostFeed {
            enabled: true,
            prev: BTreeMap::new(),
            outstanding: BTreeMap::new(),
            hist: Histogram::new(),
            faults: Vec::new(),
        }
    }

    /// Turn capture on or off. Off, every hook is a no-op.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether the feed captures.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Fold one VM's cumulative switch counters into the feed at a step
    /// close: new forwards enqueue `now_ns`, new deliveries dequeue the
    /// oldest stamp and record the difference.
    pub fn sample_vm(&mut self, now_ns: u64, vm: VmId, forwarded: u64, delivered: u64) {
        if !self.enabled {
            return;
        }
        let (prev_fwd, prev_dlv) = self
            .prev
            .insert(vm, (forwarded, delivered))
            .unwrap_or((0, 0));
        let new_fwd = forwarded.saturating_sub(prev_fwd);
        let new_dlv = delivered.saturating_sub(prev_dlv);
        if new_fwd == 0 && new_dlv == 0 {
            return;
        }
        let queue = self.outstanding.entry(vm).or_default();
        for _ in 0..new_fwd {
            if queue.len() < OUTSTANDING_CAP {
                queue.push_back(now_ns);
            }
        }
        for _ in 0..new_dlv {
            // Unsolicited deliveries beyond the queued requests are skipped
            // rather than recorded as zero: they match no request.
            let Some(stamp) = queue.pop_front() else {
                break;
            };
            self.hist.record(now_ns.saturating_sub(stamp) as f64);
        }
    }

    /// Record `faults` fault events applied at the host's step open.
    pub fn record_faults(&mut self, at_ns: u64, faults: u32) {
        if !self.enabled || faults == 0 {
            return;
        }
        self.faults.push((at_ns, faults));
    }

    /// The latency samples accumulated since the last [`HostFeed::take_hist`].
    pub fn hist(&self) -> &Histogram {
        &self.hist
    }

    /// Headline quantiles of the accumulated samples (for bare-host use).
    pub fn summary(&self) -> LatencySummary {
        LatencySummary::of(&self.hist)
    }

    /// Drain the accumulated histogram (the per-epoch seal).
    pub fn take_hist(&mut self) -> Histogram {
        std::mem::take(&mut self.hist)
    }

    /// Drain the fault applications captured since the last call.
    pub fn take_faults(&mut self) -> Vec<(u64, u32)> {
        std::mem::take(&mut self.faults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Requests completed within the same step record 0; a completion
    /// arriving steps later records the virtual-time gap.
    #[test]
    fn delta_matching_records_step_gaps() {
        let mut feed = HostFeed::new();
        let vm = VmId(1);
        // Step at t=100: 2 forwarded, 1 delivered -> one 0ns sample.
        feed.sample_vm(100, vm, 2, 1);
        // Step at t=300: nothing new forwarded, the old request completes.
        feed.sample_vm(300, vm, 2, 2);
        assert_eq!(feed.hist().count(), 2);
        assert_eq!(feed.summary().max_ns, 200);
        // Unsolicited delivery (no queued request) is skipped, not zero.
        feed.sample_vm(400, vm, 2, 3);
        assert_eq!(feed.hist().count(), 2);
    }

    #[test]
    fn disabled_feed_captures_nothing() {
        let mut feed = HostFeed::new();
        feed.set_enabled(false);
        feed.sample_vm(100, VmId(1), 5, 5);
        feed.record_faults(100, 3);
        assert_eq!(feed.hist().count(), 0);
        assert!(feed.take_faults().is_empty());
    }

    #[test]
    fn take_hist_seals_and_resets() {
        let mut feed = HostFeed::new();
        feed.sample_vm(100, VmId(1), 1, 1);
        let sealed = feed.take_hist();
        assert_eq!(sealed.count(), 1);
        assert_eq!(feed.hist().count(), 0);
    }
}
