//! The top-K hot-flow table.
//!
//! Fed from the frames the ToR delivers at the round barrier — the one
//! place every cross-host frame passes in a deterministic order — the
//! table keeps the K heaviest 4-tuples under space-saving semantics
//! (Metwally et al.): when a new flow arrives at a full table, the
//! lightest entry is evicted and the newcomer *inherits* its counts, so
//! the table over-approximates but never loses a genuinely heavy flow.
//! Eviction ties break on the smaller key, keeping the table a pure
//! function of the observation sequence.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A directional transport 4-tuple.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey {
    /// Source address.
    pub src_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination address.
    pub dst_ip: u32,
    /// Destination port.
    pub dst_port: u16,
}

/// Accumulated weight of one tracked flow.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowStat {
    /// Wire bytes observed (headers included), possibly inherited from an
    /// evicted lighter flow.
    pub bytes: u64,
    /// Frames observed.
    pub ops: u64,
}

/// A fixed-capacity top-K flow table with space-saving eviction. Internal
/// state — a dump serializes [`FlowTable::top`] as a `Vec`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FlowTable {
    k: usize,
    entries: BTreeMap<FlowKey, FlowStat>,
}

impl FlowTable {
    /// A table tracking at most `k` flows.
    pub fn new(k: usize) -> Self {
        FlowTable {
            k,
            entries: BTreeMap::new(),
        }
    }

    /// Observe one frame of `bytes` wire bytes on `key`.
    pub fn observe(&mut self, key: FlowKey, bytes: u64) {
        if self.k == 0 {
            return;
        }
        if let Some(stat) = self.entries.get_mut(&key) {
            stat.bytes += bytes;
            stat.ops += 1;
            return;
        }
        if self.entries.len() < self.k {
            self.entries.insert(key, FlowStat { bytes, ops: 1 });
            return;
        }
        // Space-saving: evict the lightest entry (ties on the smaller key —
        // the BTreeMap iteration order makes `min_by_key` deterministic)
        // and let the newcomer inherit its counts.
        let victim = self
            .entries
            .iter()
            .min_by_key(|(k, s)| (s.bytes, **k))
            .map(|(k, _)| *k)
            .expect("table is full, so non-empty");
        let inherited = self.entries.remove(&victim).expect("victim exists");
        self.entries.insert(
            key,
            FlowStat {
                bytes: inherited.bytes + bytes,
                ops: inherited.ops + 1,
            },
        );
    }

    /// Tracked flows, heaviest first (ties on the smaller key).
    pub fn top(&self) -> Vec<(FlowKey, FlowStat)> {
        let mut out: Vec<(FlowKey, FlowStat)> =
            self.entries.iter().map(|(k, s)| (*k, *s)).collect();
        out.sort_by_key(|(k, s)| (std::cmp::Reverse(s.bytes), *k));
        out
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(src_port: u16) -> FlowKey {
        FlowKey {
            src_ip: 0x0A01_0001,
            src_port,
            dst_ip: 0xC0A8_0001,
            dst_port: 7,
        }
    }

    /// Heavy flows survive a stream of one-off light flows: the defining
    /// space-saving property.
    #[test]
    fn heavy_flows_survive_churn() {
        let mut table = FlowTable::new(4);
        for round in 0..50u64 {
            table.observe(key(1), 10_000);
            table.observe(key(2), 5_000);
            // A fresh light flow every round churns the tail slots.
            table.observe(key(100 + round as u16), 10);
        }
        assert_eq!(table.len(), 4);
        let top = table.top();
        assert_eq!(top[0].0, key(1));
        assert_eq!(top[0].1.bytes, 500_000);
        assert_eq!(top[0].1.ops, 50);
        assert_eq!(top[1].0, key(2));
    }

    /// Eviction inherits the victim's counts (over-approximation, never
    /// undercount) and ties break on the smaller key.
    #[test]
    fn eviction_inherits_counts_deterministically() {
        let mut table = FlowTable::new(2);
        table.observe(key(1), 100);
        table.observe(key(2), 100); // same weight: key(1) < key(2)
        table.observe(key(3), 1); // evicts key(1), inherits its 100 bytes
        let top = table.top();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], (key(3), FlowStat { bytes: 101, ops: 2 }));
        assert_eq!(top[1], (key(2), FlowStat { bytes: 100, ops: 1 }));
    }

    #[test]
    fn zero_capacity_observes_nothing() {
        let mut table = FlowTable::new(0);
        table.observe(key(1), 100);
        assert!(table.is_empty());
    }
}
