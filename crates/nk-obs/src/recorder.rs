//! The recorder proper: capture surface, freeze trigger, snapshot.

use crate::event::{EventRing, ObsEvent, ObsEventKind, ObsFilter};
use crate::flows::{FlowKey, FlowStat, FlowTable};
use crate::latency::{EpochLatency, LatencySummary};
use nk_sim::Histogram;
use nk_types::{HostId, ObsConfig, VmId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The named windows of a migration or evacuation handover.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MigrationPhase {
    /// Engine ingress paused, mini-steps draining the wire to quiescence.
    Freeze,
    /// Identity plus per-connection stack state leaving the source.
    Export,
    /// `/32` detours steering transplanted addresses to the destination.
    Reroute,
    /// State installing on the destination host.
    Install,
    /// The VM serving again (destination side up, source share retiring).
    Thaw,
    /// A drained NSM share scaling to zero at an evacuation's tail.
    Retire,
}

/// One phase window in virtual time. Phases that complete without
/// advancing virtual time (an export is a single coordinator action) have
/// `start_ns == end_ns`; the freeze window, which runs wire-draining
/// mini-steps, has real width.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseWindow {
    /// The VM the window belongs to (`None` for share retirement).
    pub vm: Option<VmId>,
    /// Which phase.
    pub phase: MigrationPhase,
    /// Virtual time the phase opened.
    pub start_ns: u64,
    /// Virtual time the phase closed.
    pub end_ns: u64,
    /// Placement epoch at capture.
    pub epoch: u64,
    /// The evacuation-plan step that ran the phase (`None` for a direct
    /// warm migration outside any plan).
    pub step: Option<u32>,
    /// Whether the phase succeeded (`false`: it failed and a rollback or
    /// revert followed).
    pub ok: bool,
}

impl PhaseWindow {
    /// The window's width in virtual ns.
    pub fn width_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Why capture stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FreezeReason {
    /// An evacuation plan failed mid-flight and rolled back.
    PlanRolledBack {
        /// The host the plan was evacuating.
        host: HostId,
    },
    /// A host was killed (fault injection or operator action).
    HostKilled {
        /// The host that died.
        host: HostId,
    },
}

/// The dump-on-fault stamp: where and why the ring froze.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FreezeInfo {
    /// Virtual time of the trigger.
    pub at_ns: u64,
    /// Placement epoch of the trigger.
    pub epoch: u64,
    /// The trigger.
    pub reason: FreezeReason,
}

/// A serializable snapshot of everything the recorder retains.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObsDump {
    /// Set when a dump-on-fault trigger froze capture.
    pub frozen: Option<FreezeInfo>,
    /// Events captured over the recorder's lifetime (retained or evicted).
    pub events_captured: u64,
    /// Retained events, oldest first.
    pub events: Vec<ObsEvent>,
    /// Sealed latency epochs, oldest first.
    pub epochs: Vec<EpochLatency>,
    /// Migration / evacuation phase windows, capture order.
    pub phases: Vec<PhaseWindow>,
    /// Hot flows, heaviest first.
    pub flows: Vec<(FlowKey, FlowStat)>,
}

/// The cluster-scope flight recorder. Owned by `Cluster` (one per run) and
/// written only from the coordinator: every capture call happens either
/// outside the sharded step or at the round barrier with the workers
/// parked, in an order fixed by `HostId` — which is why its serialized
/// snapshot is byte-identical for any datapath thread count.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    cfg: ObsConfig,
    ring: EventRing,
    epochs: VecDeque<EpochLatency>,
    next_epoch: u64,
    epoch_start_ns: u64,
    next_epoch_ns: u64,
    phases: VecDeque<PhaseWindow>,
    flows: FlowTable,
    frozen: Option<FreezeInfo>,
}

impl FlightRecorder {
    /// A recorder shaped by `cfg`. A disabled config produces a recorder
    /// whose every capture hook is a no-op.
    pub fn new(cfg: ObsConfig) -> Self {
        FlightRecorder {
            cfg,
            ring: EventRing::new(if cfg.enabled { cfg.event_capacity } else { 0 }),
            epochs: VecDeque::new(),
            next_epoch: 0,
            epoch_start_ns: 0,
            next_epoch_ns: cfg.epoch_ns,
            phases: VecDeque::new(),
            flows: FlowTable::new(if cfg.enabled { cfg.flow_k } else { 0 }),
            frozen: None,
        }
    }

    /// The shape the recorder was built with.
    pub fn config(&self) -> &ObsConfig {
        &self.cfg
    }

    /// Whether capture hooks do anything right now (configured on and not
    /// frozen).
    pub fn active(&self) -> bool {
        self.cfg.enabled && self.frozen.is_none()
    }

    /// The dump-on-fault stamp, if a trigger fired.
    pub fn frozen(&self) -> Option<&FreezeInfo> {
        self.frozen.as_ref()
    }

    /// Capture one event.
    pub fn record_event(&mut self, at_ns: u64, epoch: u64, kind: ObsEventKind) {
        if !self.active() {
            return;
        }
        self.ring.push(at_ns, epoch, kind);
    }

    /// Capture one phase window. Windows share the event ring's capacity
    /// bound: the newest `event_capacity` are retained.
    pub fn record_phase(&mut self, window: PhaseWindow) {
        if !self.active() {
            return;
        }
        if self.phases.len() == self.cfg.event_capacity {
            self.phases.pop_front();
        }
        self.phases.push_back(window);
    }

    /// Observe one delivered frame on `key`.
    pub fn observe_flow(&mut self, key: FlowKey, bytes: u64) {
        if !self.active() {
            return;
        }
        self.flows.observe(key, bytes);
    }

    /// Whether a latency epoch is due to seal at `now_ns`.
    pub fn epoch_due(&self, now_ns: u64) -> bool {
        self.active() && now_ns >= self.next_epoch_ns
    }

    /// Seal the latency epoch ending at `now_ns` from every host's drained
    /// histogram, pre-sorted ascending by `HostId` (the caller iterates its
    /// host map in order). The cluster-wide summary is the merge of the
    /// per-host histograms — moments and min/max combine exactly, so the
    /// merged quantiles equal the quantiles of the union of samples.
    pub fn seal_epoch(&mut self, now_ns: u64, hosts: Vec<(HostId, Histogram)>) {
        if !self.active() {
            return;
        }
        let mut cluster = Histogram::new();
        let mut summaries = Vec::with_capacity(hosts.len());
        for (id, hist) in &hosts {
            cluster.merge(hist);
            summaries.push((*id, LatencySummary::of(hist)));
        }
        if self.epochs.len() == self.cfg.latency_epochs {
            self.epochs.pop_front();
        }
        self.epochs.push_back(EpochLatency {
            epoch: self.next_epoch,
            start_ns: self.epoch_start_ns,
            end_ns: now_ns,
            cluster: LatencySummary::of(&cluster),
            hosts: summaries,
        });
        self.next_epoch += 1;
        self.epoch_start_ns = now_ns;
        self.next_epoch_ns = now_ns + self.cfg.epoch_ns;
    }

    /// The dump-on-fault trigger: stop capture at exactly this point. The
    /// triggering events themselves are expected to be recorded *before*
    /// the freeze; everything after is dropped. Only the first trigger
    /// sticks — a later fault must not overwrite the record of the first.
    pub fn freeze(&mut self, at_ns: u64, epoch: u64, reason: FreezeReason) {
        if !self.cfg.enabled || self.frozen.is_some() {
            return;
        }
        self.frozen = Some(FreezeInfo {
            at_ns,
            epoch,
            reason,
        });
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &ObsEvent> {
        self.ring.iter()
    }

    /// Events passing `filter`, oldest first.
    pub fn query(&self, filter: &ObsFilter) -> Vec<ObsEvent> {
        self.ring
            .iter()
            .filter(|e| filter.matches(e))
            .copied()
            .collect()
    }

    /// Phase windows, capture order.
    pub fn phases(&self) -> impl Iterator<Item = &PhaseWindow> {
        self.phases.iter()
    }

    /// Phase windows of one VM, capture order.
    pub fn phases_of(&self, vm: VmId) -> Vec<PhaseWindow> {
        self.phases
            .iter()
            .filter(|w| w.vm == Some(vm))
            .copied()
            .collect()
    }

    /// Sealed latency epochs, oldest first.
    pub fn latency_epochs(&self) -> impl Iterator<Item = &EpochLatency> {
        self.epochs.iter()
    }

    /// Snapshot everything retained.
    pub fn snapshot(&self) -> ObsDump {
        self.snapshot_filtered(&ObsFilter::new())
    }

    /// Snapshot with the event ring narrowed by `filter` (latency epochs,
    /// phases and flows are cluster-scoped aggregates and stay whole).
    pub fn snapshot_filtered(&self, filter: &ObsFilter) -> ObsDump {
        ObsDump {
            frozen: self.frozen,
            events_captured: self.ring.captured(),
            events: self.query(filter),
            epochs: self.epochs.iter().cloned().collect(),
            phases: self.phases.iter().copied().collect(),
            flows: self.flows.top(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventClass;
    use nk_types::ClusterAction;

    fn kill(host: u8) -> ObsEventKind {
        ObsEventKind::Cluster(ClusterAction::HostKilled { host: HostId(host) })
    }

    fn ns_hist(samples: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for s in samples {
            h.record(*s as f64);
        }
        h
    }

    /// The freeze trigger stops capture at exactly the triggering point:
    /// events recorded before it stay, everything after is dropped, and a
    /// second trigger does not overwrite the first stamp.
    #[test]
    fn freeze_stops_capture_at_the_trigger() {
        let mut rec = FlightRecorder::new(ObsConfig::new());
        rec.record_event(100, 0, kill(1));
        rec.freeze(100, 0, FreezeReason::HostKilled { host: HostId(1) });
        rec.record_event(200, 0, kill(2));
        rec.record_phase(PhaseWindow {
            vm: Some(VmId(1)),
            phase: MigrationPhase::Freeze,
            start_ns: 150,
            end_ns: 250,
            epoch: 0,
            step: None,
            ok: true,
        });
        rec.freeze(300, 0, FreezeReason::PlanRolledBack { host: HostId(2) });

        let dump = rec.snapshot();
        assert_eq!(dump.events.len(), 1);
        assert_eq!(dump.events[0].at_ns, 100);
        assert!(dump.phases.is_empty());
        let info = dump.frozen.expect("frozen");
        assert_eq!(info.at_ns, 100);
        assert_eq!(info.reason, FreezeReason::HostKilled { host: HostId(1) });
    }

    /// Sealed epochs merge per-host histograms into a cluster summary whose
    /// quantiles equal the union's, and the epoch ring drops the oldest.
    #[test]
    fn epochs_seal_and_merge_in_host_order() {
        let cfg = ObsConfig::new().with_latency_epochs(2).with_epoch_ns(1_000);
        let mut rec = FlightRecorder::new(cfg);
        assert!(!rec.epoch_due(999));
        assert!(rec.epoch_due(1_000));
        let a = ns_hist(&[100, 200]);
        let b = ns_hist(&[300, 400]);
        let mut union = a.clone();
        union.merge(&b);
        rec.seal_epoch(1_000, vec![(HostId(1), a), (HostId(2), b)]);
        rec.seal_epoch(2_000, vec![]);
        rec.seal_epoch(3_000, vec![]);

        let dump = rec.snapshot();
        assert_eq!(dump.epochs.len(), 2, "oldest epoch dropped");
        assert_eq!(dump.epochs[0].epoch, 1);
        // Epoch 0 was dropped but its content was correct while retained;
        // re-check via a fresh recorder for the merge property.
        let mut rec2 = FlightRecorder::new(ObsConfig::new());
        rec2.seal_epoch(
            1_000,
            vec![
                (HostId(1), ns_hist(&[100, 200])),
                (HostId(2), ns_hist(&[300, 400])),
            ],
        );
        let sealed = rec2.snapshot().epochs[0].clone();
        assert_eq!(sealed.cluster, LatencySummary::of(&union));
        assert_eq!(sealed.hosts.len(), 2);
        assert_eq!(sealed.hosts[0].0, HostId(1));
        assert_eq!(sealed.hosts[0].1.count, 2);
    }

    /// A disabled recorder captures nothing and never seals.
    #[test]
    fn disabled_recorder_is_a_no_op() {
        let mut rec = FlightRecorder::new(ObsConfig::disabled());
        rec.record_event(100, 0, kill(1));
        rec.observe_flow(
            FlowKey {
                src_ip: 1,
                src_port: 2,
                dst_ip: 3,
                dst_port: 4,
            },
            100,
        );
        assert!(!rec.epoch_due(u64::MAX));
        rec.seal_epoch(1_000, vec![(HostId(1), ns_hist(&[100]))]);
        let dump = rec.snapshot();
        assert!(dump.events.is_empty());
        assert!(dump.epochs.is_empty());
        assert!(dump.flows.is_empty());
    }

    /// Dumps serialize to JSON and the filtered snapshot narrows only the
    /// event ring.
    #[test]
    fn dump_serializes_and_filters() {
        let mut rec = FlightRecorder::new(ObsConfig::new());
        rec.record_event(100, 0, kill(1));
        rec.record_event(
            200,
            1,
            ObsEventKind::Fault {
                host: HostId(2),
                faults: 1,
            },
        );
        rec.seal_epoch(1_000, vec![(HostId(1), ns_hist(&[100]))]);

        let full = rec.snapshot();
        let json = serde_json::to_string(&full).expect("dump serializes");
        let back: ObsDump = serde_json::from_str(&json).expect("dump deserializes");
        assert_eq!(back, full);

        let narrowed = rec.snapshot_filtered(&ObsFilter::new().with_class(EventClass::Fault));
        assert_eq!(narrowed.events.len(), 1);
        assert_eq!(narrowed.epochs, full.epochs);
        assert_eq!(narrowed.events_captured, 2);
    }
}
