//! The typed event ring and its filter queries.

use nk_ctrl::{DecisionOutcome, PlanEventKind};
use nk_types::{ClusterAction, ControlAction, HostId, VmId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What kind of event a ring entry carries — the filter vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventClass {
    /// Cluster-scope milestones (migrations, drains, evacuations, kills).
    Cluster,
    /// A host control plane's applied action (scaling, rebalancing).
    Control,
    /// An evacuation plan's step-level record.
    Plan,
    /// Fault events applied at a host's step open.
    Fault,
    /// A placement decision and whether the mechanism applied it.
    Decision,
}

/// One captured event. The payloads are the system's own serializable
/// types, not strings — a dump consumer filters and matches structurally.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ObsEventKind {
    /// A [`ClusterAction`] as pushed to the cluster event log.
    Cluster(ClusterAction),
    /// A host control plane applied `action`.
    Control {
        /// The host whose control plane acted.
        host: HostId,
        /// The action it applied.
        action: ControlAction,
    },
    /// An evacuation plan event.
    Plan(PlanEventKind),
    /// `faults` fault events fired at `host`'s step open.
    Fault {
        /// The host the faults applied to.
        host: HostId,
        /// How many fault events fired together.
        faults: u32,
    },
    /// A placement decision outcome.
    Decision(DecisionOutcome),
}

impl ObsEventKind {
    /// The event's class (the coarse filter axis).
    pub fn class(&self) -> EventClass {
        match self {
            ObsEventKind::Cluster(_) => EventClass::Cluster,
            ObsEventKind::Control { .. } => EventClass::Control,
            ObsEventKind::Plan(_) => EventClass::Plan,
            ObsEventKind::Fault { .. } => EventClass::Fault,
            ObsEventKind::Decision(_) => EventClass::Decision,
        }
    }

    /// Whether the event references `host` in any role (source,
    /// destination, owner).
    pub fn mentions_host(&self, host: HostId) -> bool {
        match *self {
            ObsEventKind::Cluster(action) => match action {
                ClusterAction::MigrateVm { from, to, .. }
                | ClusterAction::WarmMigrateVm { from, to, .. } => from == host || to == host,
                ClusterAction::DrainComplete { host: h, .. }
                | ClusterAction::ScaleToZero { host: h, .. }
                | ClusterAction::HostEvacuated { host: h, .. }
                | ClusterAction::HostKilled { host: h } => h == host,
                ClusterAction::WarmHandoverComplete { to, .. } => to == host,
            },
            ObsEventKind::Control { host: h, .. } => h == host,
            ObsEventKind::Plan(kind) => match kind {
                PlanEventKind::PlanStarted { host: h, .. }
                | PlanEventKind::PlanCommitted { host: h }
                | PlanEventKind::PlanRolledBack { host: h, .. } => h == host,
                _ => false,
            },
            ObsEventKind::Fault { host: h, .. } => h == host,
            ObsEventKind::Decision(d) => d.from == host || d.to == host,
        }
    }

    /// Whether the event references `vm`.
    pub fn mentions_vm(&self, vm: VmId) -> bool {
        match *self {
            ObsEventKind::Cluster(
                ClusterAction::MigrateVm { vm: v, .. }
                | ClusterAction::DrainComplete { vm: v, .. }
                | ClusterAction::WarmMigrateVm { vm: v, .. }
                | ClusterAction::WarmHandoverComplete { vm: v, .. },
            ) => v == vm,
            ObsEventKind::Control { action, .. } => {
                matches!(action, ControlAction::Rebalance { vm: v, .. } if v == vm)
            }
            ObsEventKind::Decision(d) => d.vm == vm,
            _ => false,
        }
    }
}

/// One event ring entry: the payload plus its capture stamps.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObsEvent {
    /// Monotonic capture sequence number. Survives wraparound: after the
    /// ring overwrote old entries, the retained entries' numbers still say
    /// exactly how many were captured before them.
    pub seq: u64,
    /// Virtual time of capture.
    pub at_ns: u64,
    /// Placement epoch at capture.
    pub epoch: u64,
    /// The event.
    pub kind: ObsEventKind,
}

/// A fixed-capacity ring of [`ObsEvent`]s: wraparound keeps the newest N.
/// Internal state — a dump serializes the retained events as a `Vec`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EventRing {
    capacity: usize,
    next_seq: u64,
    buf: VecDeque<ObsEvent>,
}

impl EventRing {
    /// A ring retaining the newest `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventRing {
            capacity,
            next_seq: 0,
            buf: VecDeque::with_capacity(capacity.min(1024)),
        }
    }

    /// Capture one event.
    pub fn push(&mut self, at_ns: u64, epoch: u64, kind: ObsEventKind) {
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(ObsEvent {
            seq: self.next_seq,
            at_ns,
            epoch,
            kind,
        });
        self.next_seq += 1;
    }

    /// Events captured over the ring's lifetime (retained or not).
    pub fn captured(&self) -> u64 {
        self.next_seq
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &ObsEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A conjunctive filter over the event ring: every set axis must match.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ObsFilter {
    /// Keep events with `epoch >= epoch_min`.
    pub epoch_min: Option<u64>,
    /// Keep events with `epoch <= epoch_max`.
    pub epoch_max: Option<u64>,
    /// Keep events mentioning this host.
    pub host: Option<HostId>,
    /// Keep events mentioning this VM.
    pub vm: Option<VmId>,
    /// Keep events of this class.
    pub class: Option<EventClass>,
}

impl ObsFilter {
    /// The match-everything filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Keep epochs in `[min, max]` (builder style).
    pub fn with_epoch_range(mut self, min: u64, max: u64) -> Self {
        self.epoch_min = Some(min);
        self.epoch_max = Some(max);
        self
    }

    /// Keep events mentioning `host` (builder style).
    pub fn with_host(mut self, host: HostId) -> Self {
        self.host = Some(host);
        self
    }

    /// Keep events mentioning `vm` (builder style).
    pub fn with_vm(mut self, vm: VmId) -> Self {
        self.vm = Some(vm);
        self
    }

    /// Keep events of `class` (builder style).
    pub fn with_class(mut self, class: EventClass) -> Self {
        self.class = Some(class);
        self
    }

    /// Whether `event` passes every set axis.
    pub fn matches(&self, event: &ObsEvent) -> bool {
        if let Some(min) = self.epoch_min {
            if event.epoch < min {
                return false;
            }
        }
        if let Some(max) = self.epoch_max {
            if event.epoch > max {
                return false;
            }
        }
        if let Some(host) = self.host {
            if !event.kind.mentions_host(host) {
                return false;
            }
        }
        if let Some(vm) = self.vm {
            if !event.kind.mentions_vm(vm) {
                return false;
            }
        }
        if let Some(class) = self.class {
            if event.kind.class() != class {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nk_types::NsmId;

    fn kill(host: u8) -> ObsEventKind {
        ObsEventKind::Cluster(ClusterAction::HostKilled { host: HostId(host) })
    }

    /// Wraparound keeps the newest N entries and their original sequence
    /// numbers: after 10 pushes into a 4-slot ring, entries 6..=9 remain.
    #[test]
    fn wraparound_keeps_newest_with_correct_seq() {
        let mut ring = EventRing::new(4);
        for i in 0..10u64 {
            ring.push(i * 100, 0, kill(i as u8));
        }
        assert_eq!(ring.captured(), 10);
        assert_eq!(ring.len(), 4);
        let seqs: Vec<u64> = ring.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        let at: Vec<u64> = ring.iter().map(|e| e.at_ns).collect();
        assert_eq!(at, vec![600, 700, 800, 900]);
    }

    #[test]
    fn filters_conjoin_over_all_axes() {
        let mut ring = EventRing::new(16);
        ring.push(
            0,
            1,
            ObsEventKind::Cluster(ClusterAction::MigrateVm {
                vm: VmId(1),
                from: HostId(1),
                to: HostId(2),
                to_nsm: NsmId(1),
            }),
        );
        ring.push(
            10,
            2,
            ObsEventKind::Fault {
                host: HostId(2),
                faults: 1,
            },
        );
        ring.push(20, 3, kill(3));

        let all: Vec<&ObsEvent> = ring.iter().collect();
        assert!(all.iter().all(|e| ObsFilter::new().matches(e)));

        let by_class = ObsFilter::new().with_class(EventClass::Fault);
        assert_eq!(all.iter().filter(|e| by_class.matches(e)).count(), 1);

        // Host 2 is mentioned by the migration (destination) and the fault.
        let by_host = ObsFilter::new().with_host(HostId(2));
        assert_eq!(all.iter().filter(|e| by_host.matches(e)).count(), 2);

        let by_vm = ObsFilter::new().with_vm(VmId(1));
        assert_eq!(all.iter().filter(|e| by_vm.matches(e)).count(), 1);

        let by_epoch = ObsFilter::new().with_epoch_range(2, 3);
        assert_eq!(all.iter().filter(|e| by_epoch.matches(e)).count(), 2);

        let narrow = ObsFilter::new()
            .with_epoch_range(2, 3)
            .with_class(EventClass::Cluster)
            .with_host(HostId(3));
        assert_eq!(all.iter().filter(|e| narrow.matches(e)).count(), 1);
    }
}
