//! The cluster flight recorder: always-on, bounded, deterministic.
//!
//! The datapath, the migration machinery and the sharded executor all keep
//! enough state to *run* deterministically, but until this crate the repo
//! retained almost nothing about *what a run was doing*: the cluster event
//! log grows without bound, latency never leaves the ad-hoc experiment
//! meters, and when an evacuation reverts the epochs leading up to it are
//! gone. The flight recorder is the retained record — part of the system,
//! not of any one experiment — capturing into fixed-capacity ring buffers:
//!
//! * [`EventRing`] — a typed ring merging cluster / control / plan / fault /
//!   decision events, each stamped with a monotonic sequence number, the
//!   virtual time and the placement epoch. Wraparound keeps the newest N.
//! * [`HostFeed`] + [`EpochLatency`] — per-epoch request-completion latency
//!   (p50 / p99 / max over an [`nk_sim::Histogram`]), sampled per host from
//!   engine metric deltas and merged across shards in `HostId` order at the
//!   cluster's round barrier, so dumps are byte-identical at any thread
//!   count.
//! * [`PhaseWindow`] — migration / evacuation phase timelines: the freeze,
//!   export, reroute, install and thaw windows in virtual ns, attributed to
//!   the VM and (for planned evacuations) the plan step.
//! * [`FlowTable`] — a top-K hot-flow table (bytes / ops per 4-tuple) with
//!   deterministic space-saving eviction, fed from the frames the ToR
//!   delivers at the round barrier.
//!
//! [`FlightRecorder::snapshot`] turns all of it into a serializable
//! [`ObsDump`], filterable by epoch range, host, VM or event class, and
//! [`FlightRecorder::freeze`] is the dump-on-fault trigger: when a plan
//! rolls back or a host is killed, capture stops at that exact step so the
//! ring preserves the run-up to the fault instead of scrolling past it.
//!
//! Everything here is deterministic by construction: no wall clock, no
//! hashing over addresses, capture order fixed by the coordinator. Two runs
//! of the same seeded scenario — at any `NK_CLUSTER_THREADS` — serialize to
//! byte-identical dumps; the `flight-recorder-determinism` CI job replays
//! exactly that.
//!
//! Intra-host sharding (`NK_CLUSTER_SHARD_WITHIN_HOSTS`) changes nothing
//! about this contract, because the recorder never taps a lane directly:
//! share lanes only *produce* — frames, metric deltas, host-feed entries —
//! and every capture keeps happening on the coordinator in the same merge
//! order as the serial walk. Fault and control entries drain from host
//! feeds in `HostId` order between steps, latency histograms merge in
//! `HostId` order at epoch seals, and the flow tap sits behind the ToR,
//! which drains uplink trunks in route (`HostId`) order at the round
//! barrier — after every host hub has already folded its lanes' traffic
//! back together in lane-key order. Dumps are therefore byte-identical
//! across thread counts *and* across sharding granularities; the
//! uneven-lane matrix in `nk-workload/tests/parallel.rs` pins exactly
//! that.

mod event;
mod flows;
mod latency;
mod recorder;

pub use event::{EventClass, EventRing, ObsEvent, ObsEventKind, ObsFilter};
pub use flows::{FlowKey, FlowStat, FlowTable};
pub use latency::{EpochLatency, HostFeed, LatencySummary};
pub use recorder::{
    FlightRecorder, FreezeInfo, FreezeReason, MigrationPhase, ObsDump, PhaseWindow,
};
