//! Logarithmic-bucket latency histogram.
//!
//! Table 5 of the paper reports the min / mean / stddev / median / max of
//! response times over 5 million requests. Storing every sample would be
//! wasteful, so the histogram keeps logarithmic buckets (5% relative error)
//! plus exact moments, which is plenty for reproducing the table.

use serde::{Deserialize, Serialize};

/// Relative width of each bucket (5%).
const GROWTH: f64 = 1.05;

/// A latency histogram with logarithmic buckets.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// bucket i covers [GROWTH^i, GROWTH^(i+1)) in the recorded unit.
    counts: Vec<u64>,
    zero_count: u64,
    total: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Vec::new(),
            zero_count: 0,
            total: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }

    fn bucket_for(value: f64) -> usize {
        (value.ln() / GROWTH.ln()).floor().max(0.0) as usize
    }

    fn bucket_mid(idx: usize) -> f64 {
        GROWTH.powi(idx as i32) * (1.0 + GROWTH) / 2.0
    }

    /// Record one sample (any non-negative unit; the experiments use
    /// microseconds).
    pub fn record(&mut self, value: f64) {
        let value = value.max(0.0);
        self.total += 1;
        self.sum += value;
        self.sum_sq += value * value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value < 1.0 {
            self.zero_count += 1;
            return;
        }
        let idx = Self::bucket_for(value);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Population standard deviation of the samples.
    pub fn stddev(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mean = self.mean();
        let var = (self.sum_sq / self.total as f64 - mean * mean).max(0.0);
        var.sqrt()
    }

    /// Approximate quantile `q` in `[0, 1]` (0.5 is the median).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = self.zero_count;
        if seen >= target {
            return 0.0;
        }
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_mid(idx);
            }
        }
        self.max
    }

    /// Median (0.5 quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.zero_count += other.zero_count;
        self.total += other.total;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.median(), 0.0);
        assert_eq!(h.stddev(), 0.0);
    }

    #[test]
    fn moments_are_exact() {
        let mut h = Histogram::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert!((h.mean() - 5.0).abs() < 1e-9);
        assert!((h.stddev() - 2.0).abs() < 1e-9);
        assert_eq!(h.min(), 2.0);
        assert_eq!(h.max(), 9.0);
    }

    #[test]
    fn quantiles_are_close() {
        let mut h = Histogram::new();
        for i in 1..=10_000 {
            h.record(i as f64);
        }
        let med = h.median();
        assert!((med - 5_000.0).abs() / 5_000.0 < 0.08, "median {med}");
        let p99 = h.quantile(0.99);
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.08, "p99 {p99}");
        let p100 = h.quantile(1.0);
        assert!(p100 > 9_000.0 && p100 <= h.max() * GROWTH, "p100 {p100}");
    }

    #[test]
    fn sub_unit_samples_count_as_zero_bucket() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(0.5);
        h.record(10.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.4), 0.0);
        assert!(h.quantile(0.99) > 5.0);
    }

    /// Quantiles after a merge equal quantiles of the union of the sample
    /// streams — exactly, not approximately: bucket-wise addition makes the
    /// merged count array identical to the one the union would have built.
    /// This is the property the flight recorder's cross-shard latency
    /// aggregation relies on (per-host histograms merged in `HostId` order
    /// must summarize like one cluster-wide histogram).
    #[test]
    fn merged_quantiles_equal_union_quantiles() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut union = Histogram::new();
        for i in 1..=1_000 {
            a.record(i as f64);
            union.record(i as f64);
        }
        // Overlapping but shifted population, sub-unit samples included.
        for i in 0..=1_500 {
            let v = i as f64 * 2.7;
            b.record(v);
            union.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        // The bucket counts are integers, so quantiles match *exactly*; the
        // moments are f64 sums whose addition order differs, so they match
        // to rounding.
        for q in [0.0, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(merged.quantile(q), union.quantile(q), "q={q}");
        }
        assert_eq!(merged.count(), union.count());
        assert_eq!(merged.min(), union.min());
        assert_eq!(merged.max(), union.max());
        assert!((merged.mean() - union.mean()).abs() < 1e-9);
        assert!((merged.stddev() - union.stddev()).abs() < 1e-9);
    }

    /// Merging with an empty histogram is the identity in both directions —
    /// min/max/moments must not be disturbed by the empty side's sentinels.
    #[test]
    fn merge_with_empty_is_identity() {
        let mut populated = Histogram::new();
        for v in [0.5, 3.0, 42.0] {
            populated.record(v);
        }
        let mut left = populated.clone();
        left.merge(&Histogram::new());
        assert_eq!(left, populated);
        let mut right = Histogram::new();
        right.merge(&populated);
        assert_eq!(right.count(), populated.count());
        assert_eq!(right.min(), populated.min());
        assert_eq!(right.max(), populated.max());
        assert_eq!(right.median(), populated.median());
    }

    #[test]
    fn merge_combines_populations() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 1..=100 {
            a.record(i as f64);
            b.record((i * 10) as f64);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 200);
        assert_eq!(merged.max(), 1000.0);
        assert_eq!(merged.min(), 1.0);
        assert!(merged.mean() > a.mean());
    }
}
