//! The uniform work-reporting interface of the host datapath.
//!
//! Every active component of a NetKernel host — the CoreEngine NQE switch,
//! the NSMs, remote peer stacks, the virtual switch — advances by being
//! polled with the current virtual time and reports how much work it did.
//! The host's scheduler drives all of them through this one trait instead of
//! hard-coding a sweep order, so scheduling policy (rounds, quiescence
//! detection, fairness) lives in one place and components stay oblivious to
//! each other.

/// A component of the host datapath that can be driven by polling.
pub trait Pollable {
    /// Advance the component to virtual time `now_ns`, performing any work
    /// that is ready (switching NQEs, running protocol state machines,
    /// moving frames). Returns the number of work items processed — NQEs,
    /// segments or frames — with `0` meaning the component is quiescent at
    /// this instant. A scheduler may poll again within the same instant as
    /// long as work keeps being reported.
    fn poll(&mut self, now_ns: u64) -> usize;
}

/// Poll every component once, in order. Returns the total work reported.
///
/// This is one scheduler *round*; see `nk-host`'s scheduler for the
/// drain-until-quiescent loop built on top of it.
pub fn poll_round(parts: &mut [&mut dyn Pollable], now_ns: u64) -> usize {
    parts.iter_mut().map(|p| p.poll(now_ns)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Countdown(usize);

    impl Pollable for Countdown {
        fn poll(&mut self, _now_ns: u64) -> usize {
            if self.0 == 0 {
                0
            } else {
                self.0 -= 1;
                1
            }
        }
    }

    #[test]
    fn poll_round_sums_work_across_components() {
        let mut a = Countdown(2);
        let mut b = Countdown(0);
        let mut c = Countdown(1);
        let mut parts: Vec<&mut dyn Pollable> = vec![&mut a, &mut b, &mut c];
        assert_eq!(poll_round(&mut parts, 0), 2);
        assert_eq!(poll_round(&mut parts, 0), 1);
        assert_eq!(poll_round(&mut parts, 0), 0);
    }
}
