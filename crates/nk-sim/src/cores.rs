//! Per-core cycle accounting.
//!
//! The evaluation's CPU-overhead tables (paper §7.8, Tables 6 and 7) compare
//! "the total number of cycles spent by the VM in Baseline, and the total
//! cycles spent by the VM and the NSM together in NetKernel". The simulator
//! reproduces that methodology: every simulated component owns a [`CoreSet`]
//! whose cores receive a cycle budget each step, work is charged against the
//! budget, and the cumulative ledger yields utilisation and overhead ratios.

use nk_types::constants::CYCLES_PER_SECOND;
use nk_types::NsmId;
use std::collections::BTreeMap;

/// Cumulative cycle ledger of one component (a VM, an NSM, or CoreEngine).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleLedger {
    /// Cycles actually spent doing work.
    pub busy: u64,
    /// Cycles offered by the cores over the component's lifetime.
    pub offered: u64,
}

impl CycleLedger {
    /// Utilisation in `[0, 1]` over the component's lifetime.
    pub fn utilisation(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.busy as f64 / self.offered as f64
        }
    }
}

/// A set of cores with a per-step cycle budget.
///
/// At the beginning of every simulation step the owner calls
/// [`CoreSet::begin_step`] with the step length; components then charge work
/// with [`CoreSet::try_charge`]/[`CoreSet::charge_up_to`] until the budget
/// runs out.
/// The budget models the aggregate capacity of all cores in the set — the
/// NetKernel data path pins connections to queue sets and queue sets to
/// cores, so treating the set as a fluid pool is accurate for the workloads
/// the evaluation uses (many connections spread over all cores).
#[derive(Clone, Debug)]
pub struct CoreSet {
    cores: usize,
    cycles_per_core_per_sec: u64,
    /// Remaining cycle budget for the current step.
    budget: u64,
    ledger: CycleLedger,
}

impl CoreSet {
    /// A set of `cores` cores at the testbed clock rate (2.3 GHz).
    pub fn new(cores: usize) -> Self {
        Self::with_clock(cores, CYCLES_PER_SECOND)
    }

    /// A set of `cores` cores with an explicit per-core clock rate.
    pub fn with_clock(cores: usize, cycles_per_core_per_sec: u64) -> Self {
        CoreSet {
            cores,
            cycles_per_core_per_sec,
            budget: 0,
            ledger: CycleLedger::default(),
        }
    }

    /// Number of cores in the set.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Change the number of cores (cores "can be readily added to or removed
    /// from a NSM", paper §3). Takes effect from the next step.
    pub fn set_cores(&mut self, cores: usize) {
        self.cores = cores;
    }

    /// Start a new step of `dt_ns` nanoseconds: refill the budget.
    ///
    /// Unused budget from the previous step is discarded (idle cycles do not
    /// accumulate).
    pub fn begin_step(&mut self, dt_ns: u64) {
        let offered = (self.cores as u128 * self.cycles_per_core_per_sec as u128 * dt_ns as u128
            / 1_000_000_000u128) as u64;
        self.budget = offered;
        self.ledger.offered += offered;
    }

    /// Remaining budget for this step.
    pub fn remaining(&self) -> u64 {
        self.budget
    }

    /// True when the budget for this step is exhausted.
    pub fn exhausted(&self) -> bool {
        self.budget == 0
    }

    /// Charge exactly `cycles` if the budget covers it. Returns `true` on
    /// success, `false` (charging nothing) otherwise.
    pub fn try_charge(&mut self, cycles: u64) -> bool {
        if cycles <= self.budget {
            self.budget -= cycles;
            self.ledger.busy += cycles;
            true
        } else {
            false
        }
    }

    /// Charge up to `cycles`, clamping to the remaining budget. Returns the
    /// cycles actually charged.
    pub fn charge_up_to(&mut self, cycles: u64) -> u64 {
        let charged = cycles.min(self.budget);
        self.budget -= charged;
        self.ledger.busy += charged;
        charged
    }

    /// How many work items of `cycles_each` the remaining budget can cover.
    /// A zero cost means everything is affordable.
    pub fn affordable(&self, cycles_each: u64) -> u64 {
        self.budget.checked_div(cycles_each).unwrap_or(u64::MAX)
    }

    /// Cumulative ledger.
    pub fn ledger(&self) -> CycleLedger {
        self.ledger
    }

    /// Cycles per second offered by the whole set.
    pub fn capacity_per_sec(&self) -> u64 {
        self.cores as u64 * self.cycles_per_core_per_sec
    }
}

/// A component whose core allocation the operator can resize.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum PoolMember {
    /// The CoreEngine NQE switch.
    Engine,
    /// One Network Stack Module.
    Nsm(NsmId),
}

/// A registry of [`CoreSet`]s, one per resizable component of a host.
///
/// The host registers CoreEngine and every NSM, refills all budgets at the
/// start of each step, and charges each component's datapath work against
/// its own set. The control plane reads the cumulative ledgers to derive
/// per-epoch utilisation and calls [`CorePool::set_cores`] to act — the
/// paper's "cores can be readily added to or removed from a NSM" (§3) as an
/// operation rather than a configuration constant. A `BTreeMap` keyed by
/// [`PoolMember`] keeps every iteration order deterministic.
#[derive(Clone, Debug)]
pub struct CorePool {
    members: BTreeMap<PoolMember, CoreSet>,
    cycles_per_core_per_sec: u64,
}

impl CorePool {
    /// An empty pool at the testbed clock rate.
    pub fn new() -> Self {
        Self::with_clock(CYCLES_PER_SECOND)
    }

    /// An empty pool with an explicit per-core clock rate.
    pub fn with_clock(cycles_per_core_per_sec: u64) -> Self {
        CorePool {
            members: BTreeMap::new(),
            cycles_per_core_per_sec: cycles_per_core_per_sec.max(1),
        }
    }

    /// Register a component with an initial core count. Re-registering an
    /// existing member resets its set (fresh ledger) — a restarted NSM
    /// starts a new accounting life.
    pub fn register(&mut self, member: PoolMember, cores: usize) {
        self.members.insert(
            member,
            CoreSet::with_clock(cores, self.cycles_per_core_per_sec),
        );
    }

    /// Remove a component (a crashed NSM stops offering cycles).
    pub fn remove(&mut self, member: PoolMember) {
        self.members.remove(&member);
    }

    /// True when the member is registered.
    pub fn contains(&self, member: PoolMember) -> bool {
        self.members.contains_key(&member)
    }

    /// Registered members, in deterministic order.
    pub fn members(&self) -> impl Iterator<Item = PoolMember> + '_ {
        self.members.keys().copied()
    }

    /// Start a new step: refill every member's budget.
    pub fn begin_step(&mut self, dt_ns: u64) {
        for set in self.members.values_mut() {
            set.begin_step(dt_ns);
        }
    }

    /// Resize a member (takes effect from the next step, like
    /// [`CoreSet::set_cores`]). Returns `false` for unknown members.
    pub fn set_cores(&mut self, member: PoolMember, cores: usize) -> bool {
        match self.members.get_mut(&member) {
            Some(set) => {
                set.set_cores(cores);
                true
            }
            None => false,
        }
    }

    /// Current core count of a member.
    pub fn cores(&self, member: PoolMember) -> Option<usize> {
        self.members.get(&member).map(CoreSet::cores)
    }

    /// Charge up to `cycles` against a member's step budget; returns the
    /// cycles actually charged (0 for unknown members).
    pub fn charge_up_to(&mut self, member: PoolMember, cycles: u64) -> u64 {
        self.members
            .get_mut(&member)
            .map(|set| set.charge_up_to(cycles))
            .unwrap_or(0)
    }

    /// Cumulative ledger of a member.
    pub fn ledger(&self, member: PoolMember) -> Option<CycleLedger> {
        self.members.get(&member).map(CoreSet::ledger)
    }
}

impl Default for CorePool {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_scales_with_cores_and_step() {
        let mut one = CoreSet::with_clock(1, 1_000_000_000);
        one.begin_step(1_000_000); // 1 ms at 1 GHz = 1M cycles
        assert_eq!(one.remaining(), 1_000_000);

        let mut four = CoreSet::with_clock(4, 1_000_000_000);
        four.begin_step(1_000_000);
        assert_eq!(four.remaining(), 4_000_000);
        assert_eq!(four.capacity_per_sec(), 4_000_000_000);
    }

    #[test]
    fn charging_respects_budget() {
        let mut c = CoreSet::with_clock(1, 1_000_000_000);
        c.begin_step(1_000); // 1000 cycles
        assert!(c.try_charge(400));
        assert!(c.try_charge(600));
        assert!(!c.try_charge(1));
        assert!(c.exhausted());
        assert_eq!(c.ledger().busy, 1_000);
        assert_eq!(c.ledger().offered, 1_000);
        assert!((c.ledger().utilisation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn charge_up_to_clamps() {
        let mut c = CoreSet::with_clock(1, 1_000_000_000);
        c.begin_step(1_000);
        assert_eq!(c.charge_up_to(700), 700);
        assert_eq!(c.charge_up_to(700), 300);
        assert_eq!(c.charge_up_to(700), 0);
    }

    #[test]
    fn affordable_counts_items() {
        let mut c = CoreSet::with_clock(2, 1_000_000_000);
        c.begin_step(1_000);
        assert_eq!(c.affordable(100), 20);
        assert_eq!(c.affordable(0), u64::MAX);
    }

    #[test]
    fn unused_budget_does_not_accumulate() {
        let mut c = CoreSet::with_clock(1, 1_000_000_000);
        c.begin_step(1_000);
        c.begin_step(1_000);
        assert_eq!(c.remaining(), 1_000);
        assert_eq!(c.ledger().offered, 2_000);
        assert_eq!(c.ledger().busy, 0);
        assert_eq!(c.ledger().utilisation(), 0.0);
    }

    #[test]
    fn empty_ledger_utilisation_is_zero() {
        assert_eq!(CycleLedger::default().utilisation(), 0.0);
    }

    #[test]
    fn resizing_cores_takes_effect_next_step() {
        let mut c = CoreSet::with_clock(1, 1_000_000_000);
        c.begin_step(1_000);
        assert_eq!(c.remaining(), 1_000);
        c.set_cores(3);
        assert_eq!(c.cores(), 3);
        c.begin_step(1_000);
        assert_eq!(c.remaining(), 3_000);
    }

    /// Shrinking mid-step below what was already charged must not disturb
    /// the current budget or the ledger: the charged cycles stay charged,
    /// the remaining budget stays spendable, and only the next refill
    /// reflects the smaller set.
    #[test]
    fn shrinking_mid_step_below_charged_cycles_is_safe() {
        let mut c = CoreSet::with_clock(4, 1_000_000_000);
        c.begin_step(1_000); // 4000 cycles offered
        assert!(c.try_charge(3_000));
        c.set_cores(1); // 1 core could only ever offer 1000
        assert_eq!(c.remaining(), 1_000, "mid-step budget is untouched");
        assert!(c.try_charge(1_000), "remaining budget stays spendable");
        assert_eq!(c.ledger().busy, 4_000);
        assert_eq!(c.ledger().offered, 4_000);
        c.begin_step(1_000);
        assert_eq!(c.remaining(), 1_000, "refill uses the shrunk set");
        assert_eq!(c.ledger().offered, 5_000);
    }

    /// Shrinking all the way to zero cores offers no cycles but never
    /// divides by zero or panics; utilisation stays well-defined.
    #[test]
    fn zero_core_set_offers_nothing() {
        let mut c = CoreSet::with_clock(2, 1_000_000_000);
        c.begin_step(1_000);
        c.charge_up_to(500);
        c.set_cores(0);
        c.begin_step(1_000);
        assert_eq!(c.remaining(), 0);
        assert!(c.exhausted());
        assert!(!c.try_charge(1));
        assert_eq!(c.charge_up_to(100), 0);
        let l = c.ledger();
        assert_eq!(l.busy, 500);
        assert_eq!(l.offered, 2_000);
    }

    #[test]
    fn pool_registers_resizes_and_charges_members() {
        let mut pool = CorePool::with_clock(1_000_000_000);
        pool.register(PoolMember::Engine, 1);
        pool.register(PoolMember::Nsm(NsmId(1)), 2);
        assert!(pool.contains(PoolMember::Engine));
        assert_eq!(pool.cores(PoolMember::Nsm(NsmId(1))), Some(2));

        pool.begin_step(1_000);
        assert_eq!(pool.charge_up_to(PoolMember::Engine, 1_500), 1_000);
        assert_eq!(pool.charge_up_to(PoolMember::Nsm(NsmId(1)), 1_500), 1_500);
        let l = pool.ledger(PoolMember::Nsm(NsmId(1))).unwrap();
        assert_eq!(l.busy, 1_500);
        assert_eq!(l.offered, 2_000);

        assert!(pool.set_cores(PoolMember::Nsm(NsmId(1)), 4));
        pool.begin_step(1_000);
        assert_eq!(pool.charge_up_to(PoolMember::Nsm(NsmId(1)), 10_000), 4_000);
    }

    #[test]
    fn pool_handles_unknown_and_removed_members() {
        let mut pool = CorePool::new();
        assert!(!pool.set_cores(PoolMember::Nsm(NsmId(9)), 2));
        assert_eq!(pool.cores(PoolMember::Nsm(NsmId(9))), None);
        assert_eq!(pool.charge_up_to(PoolMember::Nsm(NsmId(9)), 100), 0);
        assert!(pool.ledger(PoolMember::Nsm(NsmId(9))).is_none());

        pool.register(PoolMember::Nsm(NsmId(1)), 1);
        pool.remove(PoolMember::Nsm(NsmId(1)));
        assert!(!pool.contains(PoolMember::Nsm(NsmId(1))));
        assert_eq!(pool.members().count(), 0);
    }

    /// Re-registering a member (an NSM restart) starts a fresh ledger.
    #[test]
    fn reregistration_resets_the_ledger() {
        let mut pool = CorePool::with_clock(1_000_000_000);
        pool.register(PoolMember::Nsm(NsmId(1)), 1);
        pool.begin_step(1_000);
        pool.charge_up_to(PoolMember::Nsm(NsmId(1)), 800);
        pool.register(PoolMember::Nsm(NsmId(1)), 1);
        let l = pool.ledger(PoolMember::Nsm(NsmId(1))).unwrap();
        assert_eq!(l.busy, 0);
        assert_eq!(l.offered, 0);
    }

    #[test]
    fn pool_members_iterate_in_deterministic_order() {
        let mut pool = CorePool::new();
        pool.register(PoolMember::Nsm(NsmId(2)), 1);
        pool.register(PoolMember::Engine, 1);
        pool.register(PoolMember::Nsm(NsmId(1)), 1);
        let order: Vec<PoolMember> = pool.members().collect();
        assert_eq!(
            order,
            vec![
                PoolMember::Engine,
                PoolMember::Nsm(NsmId(1)),
                PoolMember::Nsm(NsmId(2)),
            ]
        );
    }
}
