//! Per-core cycle accounting.
//!
//! The evaluation's CPU-overhead tables (paper §7.8, Tables 6 and 7) compare
//! "the total number of cycles spent by the VM in Baseline, and the total
//! cycles spent by the VM and the NSM together in NetKernel". The simulator
//! reproduces that methodology: every simulated component owns a [`CoreSet`]
//! whose cores receive a cycle budget each step, work is charged against the
//! budget, and the cumulative ledger yields utilisation and overhead ratios.

use nk_types::constants::CYCLES_PER_SECOND;

/// Cumulative cycle ledger of one component (a VM, an NSM, or CoreEngine).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleLedger {
    /// Cycles actually spent doing work.
    pub busy: u64,
    /// Cycles offered by the cores over the component's lifetime.
    pub offered: u64,
}

impl CycleLedger {
    /// Utilisation in `[0, 1]` over the component's lifetime.
    pub fn utilisation(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.busy as f64 / self.offered as f64
        }
    }
}

/// A set of cores with a per-step cycle budget.
///
/// At the beginning of every simulation step the owner calls
/// [`CoreSet::begin_step`] with the step length; components then charge work
/// with [`CoreSet::try_charge`]/[`CoreSet::charge`] until the budget runs out.
/// The budget models the aggregate capacity of all cores in the set — the
/// NetKernel data path pins connections to queue sets and queue sets to
/// cores, so treating the set as a fluid pool is accurate for the workloads
/// the evaluation uses (many connections spread over all cores).
#[derive(Clone, Debug)]
pub struct CoreSet {
    cores: usize,
    cycles_per_core_per_sec: u64,
    /// Remaining cycle budget for the current step.
    budget: u64,
    ledger: CycleLedger,
}

impl CoreSet {
    /// A set of `cores` cores at the testbed clock rate (2.3 GHz).
    pub fn new(cores: usize) -> Self {
        Self::with_clock(cores, CYCLES_PER_SECOND)
    }

    /// A set of `cores` cores with an explicit per-core clock rate.
    pub fn with_clock(cores: usize, cycles_per_core_per_sec: u64) -> Self {
        CoreSet {
            cores,
            cycles_per_core_per_sec,
            budget: 0,
            ledger: CycleLedger::default(),
        }
    }

    /// Number of cores in the set.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Change the number of cores (cores "can be readily added to or removed
    /// from a NSM", paper §3). Takes effect from the next step.
    pub fn set_cores(&mut self, cores: usize) {
        self.cores = cores;
    }

    /// Start a new step of `dt_ns` nanoseconds: refill the budget.
    ///
    /// Unused budget from the previous step is discarded (idle cycles do not
    /// accumulate).
    pub fn begin_step(&mut self, dt_ns: u64) {
        let offered = (self.cores as u128 * self.cycles_per_core_per_sec as u128 * dt_ns as u128
            / 1_000_000_000u128) as u64;
        self.budget = offered;
        self.ledger.offered += offered;
    }

    /// Remaining budget for this step.
    pub fn remaining(&self) -> u64 {
        self.budget
    }

    /// True when the budget for this step is exhausted.
    pub fn exhausted(&self) -> bool {
        self.budget == 0
    }

    /// Charge exactly `cycles` if the budget covers it. Returns `true` on
    /// success, `false` (charging nothing) otherwise.
    pub fn try_charge(&mut self, cycles: u64) -> bool {
        if cycles <= self.budget {
            self.budget -= cycles;
            self.ledger.busy += cycles;
            true
        } else {
            false
        }
    }

    /// Charge up to `cycles`, clamping to the remaining budget. Returns the
    /// cycles actually charged.
    pub fn charge_up_to(&mut self, cycles: u64) -> u64 {
        let charged = cycles.min(self.budget);
        self.budget -= charged;
        self.ledger.busy += charged;
        charged
    }

    /// How many work items of `cycles_each` the remaining budget can cover.
    /// A zero cost means everything is affordable.
    pub fn affordable(&self, cycles_each: u64) -> u64 {
        self.budget.checked_div(cycles_each).unwrap_or(u64::MAX)
    }

    /// Cumulative ledger.
    pub fn ledger(&self) -> CycleLedger {
        self.ledger
    }

    /// Cycles per second offered by the whole set.
    pub fn capacity_per_sec(&self) -> u64 {
        self.cores as u64 * self.cycles_per_core_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_scales_with_cores_and_step() {
        let mut one = CoreSet::with_clock(1, 1_000_000_000);
        one.begin_step(1_000_000); // 1 ms at 1 GHz = 1M cycles
        assert_eq!(one.remaining(), 1_000_000);

        let mut four = CoreSet::with_clock(4, 1_000_000_000);
        four.begin_step(1_000_000);
        assert_eq!(four.remaining(), 4_000_000);
        assert_eq!(four.capacity_per_sec(), 4_000_000_000);
    }

    #[test]
    fn charging_respects_budget() {
        let mut c = CoreSet::with_clock(1, 1_000_000_000);
        c.begin_step(1_000); // 1000 cycles
        assert!(c.try_charge(400));
        assert!(c.try_charge(600));
        assert!(!c.try_charge(1));
        assert!(c.exhausted());
        assert_eq!(c.ledger().busy, 1_000);
        assert_eq!(c.ledger().offered, 1_000);
        assert!((c.ledger().utilisation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn charge_up_to_clamps() {
        let mut c = CoreSet::with_clock(1, 1_000_000_000);
        c.begin_step(1_000);
        assert_eq!(c.charge_up_to(700), 700);
        assert_eq!(c.charge_up_to(700), 300);
        assert_eq!(c.charge_up_to(700), 0);
    }

    #[test]
    fn affordable_counts_items() {
        let mut c = CoreSet::with_clock(2, 1_000_000_000);
        c.begin_step(1_000);
        assert_eq!(c.affordable(100), 20);
        assert_eq!(c.affordable(0), u64::MAX);
    }

    #[test]
    fn unused_budget_does_not_accumulate() {
        let mut c = CoreSet::with_clock(1, 1_000_000_000);
        c.begin_step(1_000);
        c.begin_step(1_000);
        assert_eq!(c.remaining(), 1_000);
        assert_eq!(c.ledger().offered, 2_000);
        assert_eq!(c.ledger().busy, 0);
        assert_eq!(c.ledger().utilisation(), 0.0);
    }

    #[test]
    fn empty_ledger_utilisation_is_zero() {
        assert_eq!(CycleLedger::default().utilisation(), 0.0);
    }

    #[test]
    fn resizing_cores_takes_effect_next_step() {
        let mut c = CoreSet::with_clock(1, 1_000_000_000);
        c.begin_step(1_000);
        assert_eq!(c.remaining(), 1_000);
        c.set_cores(3);
        assert_eq!(c.cores(), 3);
        c.begin_step(1_000);
        assert_eq!(c.remaining(), 3_000);
    }
}
