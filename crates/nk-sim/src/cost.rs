//! The calibrated CPU cost model.
//!
//! The simulator regenerates the paper's evaluation by executing the
//! NetKernel mechanism (NQE translation, switching, hugepage copies, stack
//! processing) and charging each operation a number of CPU cycles against the
//! owning component's [`crate::CoreSet`]. The constants below are calibrated
//! against the absolute numbers the paper reports for its testbed (2.3 GHz
//! Xeon cores, 100 G NICs); the calibration targets are quoted next to each
//! constant. Absolute results are therefore "model cycles", but ratios and
//! trends (kernel vs mTCP, Baseline vs NetKernel, scaling with cores) emerge
//! from the same mechanism the paper describes.

use nk_types::constants::MSS;
use serde::{Deserialize, Serialize};

/// Per-operation costs of one direction (TX or RX) of a network stack.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StackCosts {
    /// Cycles per socket-level message (syscall + socket bookkeeping).
    pub per_msg: f64,
    /// Cycles per MSS-sized packet (segmentation, header processing, and for
    /// RX the softirq/interrupt work that makes receive much more expensive
    /// than send on the kernel stack — paper §7.3).
    pub per_pkt: f64,
    /// Cycles per payload byte (checksums and data touching).
    pub per_byte: f64,
}

impl StackCosts {
    /// Total cycles to process `bytes` of payload split into `msgs` messages.
    pub fn cost(&self, bytes: u64, msgs: u64) -> f64 {
        let pkts = bytes.div_ceil(MSS as u64).max(msgs);
        self.per_msg * msgs as f64 + self.per_pkt * pkts as f64 + self.per_byte * bytes as f64
    }

    /// Cycles to process a single message of `len` bytes.
    pub fn cost_one(&self, len: u64) -> f64 {
        self.cost(len, 1)
    }
}

/// The full cost model of the simulated host.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    // ---- NetKernel machinery -------------------------------------------------
    /// GuestLib / ServiceLib cycles to translate one socket operation to or
    /// from an NQE (paper §4.2).
    pub nqe_translate: f64,
    /// Fixed cycles CoreEngine pays per poll/copy batch. Calibrated together
    /// with [`CostModel::nqe_switch_per_nqe`] against Figure 11: ~8 M NQEs/s
    /// unbatched and ~198 M NQEs/s at batch 256 on one 2.3 GHz core.
    pub nqe_switch_batch: f64,
    /// Cycles CoreEngine pays per switched NQE (two ring copies + table
    /// lookup).
    pub nqe_switch_per_nqe: f64,
    /// Cycles to allocate/free one chunk in the shared hugepage region.
    pub hugepage_alloc: f64,
    /// Cycles per byte for a hugepage copy (application ↔ hugepage, or
    /// hugepage ↔ stack buffer). Calibrated against Figure 12: ≈4.9 Gbps at
    /// 64 B messages and ≈144 Gbps at 8 KB messages on one core.
    pub copy_per_byte: f64,
    /// Guest-side syscall / kernel-space redirection cost per socket call
    /// (paper §4.1 chooses kernel-space redirection and accepts this cost).
    pub guest_syscall: f64,
    /// Cycles to deliver a virtual interrupt / wake-up (§4.6).
    pub interrupt: f64,

    // ---- Kernel-style stack (the paper's kernel stack NSM / Baseline guest stack)
    /// TX direction costs. Calibrated against Figures 13/15: ≈31 Gbps single
    /// stream and ≈55 Gbps with 8 streams at 16 KB messages on one core.
    pub kernel_tx: StackCosts,
    /// RX direction costs. Calibrated against Figures 14/16: ≈13.6 Gbps
    /// single stream and ≈17.4 Gbps with 8 streams at 16 KB messages.
    pub kernel_rx: StackCosts,
    /// Full cost of one short-lived connection (accept + request + response +
    /// close) on the kernel stack, excluding payload costs. Calibrated
    /// against Figure 17/20: ≈70 K requests/s on one core.
    pub kernel_conn: f64,
    /// Amdahl serial fraction of kernel-stack bulk TX across cores
    /// (Figure 18: line rate needs 3 cores; Table 4: 85 Gbps at 2 cores).
    pub kernel_tx_serial: f64,
    /// Amdahl serial fraction of kernel-stack bulk RX across cores
    /// (Figure 19: ≈91 Gbps at 8 cores).
    pub kernel_rx_serial: f64,
    /// Amdahl serial fraction for kernel-stack short connections
    /// (Figure 20: 5.7× speed-up at 8 cores).
    pub kernel_conn_serial: f64,
    /// Single-stream efficiency of kernel TX relative to the multi-stream
    /// aggregate (Figure 13 vs 15: 30.9 / 55.2).
    pub kernel_single_stream_tx: f64,
    /// Single-stream efficiency of kernel RX (Figure 14 vs 16: 13.6 / 17.4).
    pub kernel_single_stream_rx: f64,

    // ---- mTCP-style userspace stack -----------------------------------------
    /// TX direction costs of the mTCP-style NSM (batched, poll-mode I/O).
    pub mtcp_tx: StackCosts,
    /// RX direction costs of the mTCP-style NSM.
    pub mtcp_rx: StackCosts,
    /// Full cost of one short-lived connection on the mTCP-style stack.
    /// Calibrated against Figure 20 / Table 3: ≈190 K requests/s per core and
    /// ≈1.1 M requests/s with 8 cores.
    pub mtcp_conn: f64,
    /// Amdahl serial fraction of the mTCP stack (per-core partitioning makes
    /// it almost perfectly scalable).
    pub mtcp_conn_serial: f64,

    // ---- Application-side costs ----------------------------------------------
    /// Cycles the guest application spends per request (epoll dispatch,
    /// parsing, building the response) — applies to Baseline and NetKernel
    /// alike.
    pub app_request: f64,
    /// Cycles the application-gateway style VM spends per proxied request on
    /// top of the stack cost (use case 1, §6.1).
    pub ag_request: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            nqe_translate: 80.0,
            nqe_switch_batch: 190.0,
            nqe_switch_per_nqe: 10.0,
            hugepage_alloc: 60.0,
            copy_per_byte: 0.05,
            guest_syscall: 450.0,
            interrupt: 600.0,

            kernel_tx: StackCosts {
                per_msg: 1_600.0,
                per_pkt: 150.0,
                per_byte: 0.15,
            },
            kernel_rx: StackCosts {
                per_msg: 1_500.0,
                per_pkt: 400.0,
                per_byte: 0.62,
            },
            kernel_conn: 30_000.0,
            kernel_tx_serial: 0.176,
            kernel_rx_serial: 0.02,
            kernel_conn_serial: 0.055,
            kernel_single_stream_tx: 0.56,
            kernel_single_stream_rx: 0.78,

            mtcp_tx: StackCosts {
                per_msg: 500.0,
                per_pkt: 60.0,
                per_byte: 0.10,
            },
            mtcp_rx: StackCosts {
                per_msg: 500.0,
                per_pkt: 90.0,
                per_byte: 0.18,
            },
            mtcp_conn: 11_300.0,
            mtcp_conn_serial: 0.008,

            app_request: 3_000.0,
            ag_request: 9_000.0,
        }
    }
}

impl CostModel {
    /// Cycles CoreEngine spends switching `nqes` NQEs polled in batches of
    /// `batch`.
    pub fn switch_cost(&self, nqes: u64, batch: usize) -> f64 {
        if nqes == 0 {
            return 0.0;
        }
        let batch = batch.max(1) as u64;
        let batches = nqes.div_ceil(batch);
        self.nqe_switch_batch * batches as f64 + self.nqe_switch_per_nqe * nqes as f64
    }

    /// CoreEngine NQE switching throughput (NQEs per second per core) for a
    /// given batch size — the quantity Figure 11 reports.
    pub fn switch_rate(&self, batch: usize, cycles_per_sec: u64) -> f64 {
        let per_nqe = self.switch_cost(batch as u64, batch) / batch.max(1) as f64;
        cycles_per_sec as f64 / per_nqe
    }

    /// Cycles for the guest-side data path of one `send()`/`recv()` of `len`
    /// bytes: syscall, NQE translation, hugepage allocation and copy.
    pub fn guest_data_path(&self, len: u64) -> f64 {
        self.guest_syscall
            + self.nqe_translate
            + self.hugepage_alloc
            + self.copy_per_byte * len as f64
    }

    /// Cycles for the NSM-side extra copy between the hugepage region and the
    /// stack buffers (the overhead §7.8 attributes the throughput cost to).
    pub fn nsm_copy(&self, len: u64) -> f64 {
        self.nqe_translate + self.copy_per_byte * len as f64
    }

    /// Effective parallel speed-up of `cores` cores under Amdahl's law with
    /// serial fraction `serial`.
    pub fn speedup(cores: usize, serial: f64) -> f64 {
        let n = cores.max(1) as f64;
        1.0 / (serial + (1.0 - serial) / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nk_types::constants::CYCLES_PER_SECOND;

    #[test]
    fn stack_cost_accounts_messages_packets_bytes() {
        let c = StackCosts {
            per_msg: 100.0,
            per_pkt: 10.0,
            per_byte: 0.5,
        };
        // 1 message of 100 bytes = 1 packet.
        assert!((c.cost_one(100) - (100.0 + 10.0 + 50.0)).abs() < 1e-9);
        // 3000 bytes = 3 packets (MSS 1460).
        assert!((c.cost(3000, 1) - (100.0 + 30.0 + 1500.0)).abs() < 1e-9);
        // At least one packet per message even for tiny messages.
        assert!((c.cost(4 * 10, 4) - (400.0 + 40.0 + 20.0)).abs() < 1e-9);
    }

    #[test]
    fn switch_cost_scales_with_batching() {
        let m = CostModel::default();
        let unbatched = m.switch_cost(1000, 1) / 1000.0;
        let batched = m.switch_cost(1000, 64) / 1000.0;
        assert!(
            unbatched > 3.0 * batched,
            "batching must amortise the fixed cost"
        );
        assert_eq!(m.switch_cost(0, 16), 0.0);
    }

    #[test]
    fn switch_rate_matches_figure_11_calibration() {
        let m = CostModel::default();
        // Figure 11: ~8 M NQEs/s unbatched, ~41 M at batch 4, ~198 M at 256.
        let r1 = m.switch_rate(1, CYCLES_PER_SECOND) / 1e6;
        let r4 = m.switch_rate(4, CYCLES_PER_SECOND) / 1e6;
        let r256 = m.switch_rate(256, CYCLES_PER_SECOND) / 1e6;
        assert!(
            r1 > 6.0 && r1 < 16.0,
            "unbatched rate {r1} M/s out of range"
        );
        assert!(r4 > 30.0 && r4 < 55.0, "batch-4 rate {r4} M/s out of range");
        assert!(
            r256 > 150.0 && r256 < 230.0,
            "batch-256 rate {r256} M/s out of range"
        );
        assert!(r1 < r4 && r4 < r256);
    }

    #[test]
    fn kernel_rx_is_costlier_than_tx() {
        let m = CostModel::default();
        assert!(m.kernel_rx.cost_one(16384) > 1.5 * m.kernel_tx.cost_one(16384));
    }

    #[test]
    fn mtcp_connections_are_cheaper_than_kernel() {
        let m = CostModel::default();
        assert!(m.mtcp_conn * 2.0 < m.kernel_conn);
        // Figure 20 calibration: ~70 K rps/core kernel, ~190 K rps/core mTCP.
        let kernel_rps = CYCLES_PER_SECOND as f64 / (m.kernel_conn + m.app_request);
        let mtcp_rps = CYCLES_PER_SECOND as f64 / (m.mtcp_conn + m.app_request);
        assert!(
            kernel_rps > 55_000.0 && kernel_rps < 85_000.0,
            "kernel {kernel_rps}"
        );
        assert!(
            mtcp_rps > 150_000.0 && mtcp_rps < 230_000.0,
            "mtcp {mtcp_rps}"
        );
    }

    #[test]
    fn amdahl_speedup_behaviour() {
        assert!((CostModel::speedup(1, 0.1) - 1.0).abs() < 1e-12);
        assert!(CostModel::speedup(8, 0.0) > 7.99);
        let s = CostModel::speedup(8, 0.055);
        assert!(s > 5.3 && s < 6.3, "kernel conn speedup at 8 cores: {s}");
    }

    #[test]
    fn guest_data_path_is_dominated_by_copy_for_large_messages() {
        let m = CostModel::default();
        let small = m.guest_data_path(64);
        let large = m.guest_data_path(8192);
        assert!(large > small);
        assert!(large - small >= 0.04 * (8192.0 - 64.0));
    }

    #[test]
    fn model_serializes() {
        let m = CostModel::default();
        let json = serde_json::to_string(&m).unwrap();
        let back: CostModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
