//! A tiny deterministic PRNG (SplitMix64).
//!
//! Every randomized decision in the simulation — frame loss and reordering
//! in the fabric, generated fault schedules, scenario payloads — must be
//! reproducible across runs and platforms, so the workspace uses this one
//! seeded generator instead of any global randomness. It lives in `nk-sim`
//! (the deterministic substrate) and is re-exported by `nk-fabric` for
//! backwards compatibility.

/// SplitMix64 pseudo-random number generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`; returns 0 when `bound` is 0.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut r = SplitMix64::new(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn chance_edge_cases() {
        let mut r = SplitMix64::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(11);
        for _ in 0..1000 {
            assert!(r.next_below(7) < 7);
        }
        assert_eq!(r.next_below(0), 0);
    }
}
