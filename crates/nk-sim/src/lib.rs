//! Deterministic simulation substrate for the NetKernel evaluation.
//!
//! The paper's evaluation runs on a physical testbed (dual Xeon E5-2698 v3,
//! Mellanox 100 G NICs). This crate substitutes that testbed with a
//! deterministic, discrete-time model so every figure and table can be
//! regenerated on any machine:
//!
//! * [`clock`] — a virtual clock in nanoseconds and the step-driven
//!   simulation loop helpers;
//! * [`cores`] — per-core cycle accounting: each vCPU contributes a cycle
//!   budget per step, components charge their work against it, and
//!   utilisation/overhead metrics (paper Tables 6 and 7) fall out of the
//!   ledger;
//! * [`cost`] — the calibrated cost model: cycles per NQE, per byte copied,
//!   per packet processed by the kernel-style or mTCP-style stack, per
//!   interrupt, per connection;
//! * [`bucket`] — token buckets used by CoreEngine for rate-limit isolation
//!   (paper §7.6, Figure 21);
//! * [`poll`] — the [`Pollable`] work-reporting trait every datapath
//!   component implements so the host can schedule them uniformly;
//! * [`record`] — time-series recorders and counters used by experiments;
//! * [`rng`] — the workspace's seeded SplitMix64 generator, the only source
//!   of randomness (fabric impairments, fault schedules, scenario payloads)
//!   so every run is replayable from its seed;
//! * [`histogram`] — a logarithmic-bucket latency histogram (paper Table 5).

pub mod bucket;
pub mod clock;
pub mod cores;
pub mod cost;
pub mod histogram;
pub mod poll;
pub mod record;
pub mod rng;

pub use bucket::TokenBucket;
pub use clock::{Clock, NANOS_PER_SEC};
pub use cores::{CorePool, CoreSet, CycleLedger, PoolMember};
pub use cost::CostModel;
pub use histogram::Histogram;
pub use poll::Pollable;
pub use record::{Counter, TimeSeries};
pub use rng::SplitMix64;
