//! Token buckets for CoreEngine rate-limit isolation.
//!
//! "Providers can implement other forms of isolation mechanisms to rate limit
//! a VM in terms of bandwidth or the number of NQEs (i.e. operations) per
//! second" (paper §4.4); §7.6 evaluates exactly this with per-VM bandwidth
//! caps. The bucket operates on virtual time supplied by the caller so it
//! behaves identically in threaded and simulated execution.

/// A classic token bucket.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    /// Tokens added per second (bytes/s or operations/s).
    rate_per_sec: f64,
    /// Maximum burst the bucket can accumulate.
    burst: f64,
    /// Current token level.
    tokens: f64,
    /// Last refill timestamp in nanoseconds.
    last_ns: u64,
}

impl TokenBucket {
    /// A bucket refilling at `rate_per_sec` with a burst of `burst` tokens,
    /// starting full at time `now_ns`.
    pub fn new(rate_per_sec: f64, burst: f64, now_ns: u64) -> Self {
        TokenBucket {
            rate_per_sec,
            burst,
            tokens: burst,
            last_ns: now_ns,
        }
    }

    /// Convenience constructor for a bandwidth cap in Gbps, with a default
    /// burst of one millisecond worth of tokens.
    pub fn for_gbps(gbps: f64, now_ns: u64) -> Self {
        let rate = gbps * 1e9 / 8.0;
        TokenBucket::new(rate, rate / 1_000.0, now_ns)
    }

    fn refill(&mut self, now_ns: u64) {
        if now_ns > self.last_ns {
            let dt = (now_ns - self.last_ns) as f64 / 1e9;
            self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.burst);
            self.last_ns = now_ns;
        }
    }

    /// Try to consume `amount` tokens at time `now_ns`. Returns `true` when
    /// the bucket had enough tokens.
    pub fn try_consume(&mut self, amount: f64, now_ns: u64) -> bool {
        self.refill(now_ns);
        if self.tokens >= amount {
            self.tokens -= amount;
            true
        } else {
            false
        }
    }

    /// Consume up to `amount` tokens, returning how many were granted.
    pub fn consume_up_to(&mut self, amount: f64, now_ns: u64) -> f64 {
        self.refill(now_ns);
        let granted = amount.min(self.tokens).max(0.0);
        self.tokens -= granted;
        granted
    }

    /// Tokens currently available at time `now_ns`.
    pub fn available(&mut self, now_ns: u64) -> f64 {
        self.refill(now_ns);
        self.tokens
    }

    /// The configured refill rate in tokens per second.
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }

    /// Change the refill rate (e.g. the operator updates a VM's cap).
    pub fn set_rate_per_sec(&mut self, rate_per_sec: f64, now_ns: u64) {
        self.refill(now_ns);
        self.rate_per_sec = rate_per_sec;
        self.burst = self.burst.max(rate_per_sec / 1_000.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enforces_long_term_rate() {
        // 1000 tokens/s, burst 100.
        let mut b = TokenBucket::new(1000.0, 100.0, 0);
        let mut granted = 0.0;
        // Ask for 50 tokens every millisecond for one second: demand is 50k,
        // but only burst + rate = 100 + 1000 should be granted.
        for ms in 0..1000u64 {
            granted += b.consume_up_to(50.0, ms * 1_000_000);
        }
        assert!(granted <= 1101.0, "granted {granted} exceeds rate + burst");
        assert!(granted >= 1050.0, "granted {granted} under-delivers");
    }

    #[test]
    fn burst_is_capped() {
        let mut b = TokenBucket::new(1000.0, 10.0, 0);
        // After a long idle period the bucket holds only the burst.
        assert_eq!(b.available(10_000_000_000), 10.0);
        assert!(b.try_consume(10.0, 10_000_000_000));
        assert!(!b.try_consume(1.0, 10_000_000_000));
    }

    #[test]
    fn try_consume_is_all_or_nothing() {
        let mut b = TokenBucket::new(100.0, 5.0, 0);
        assert!(!b.try_consume(6.0, 0));
        assert_eq!(b.available(0), 5.0);
        assert!(b.try_consume(5.0, 0));
    }

    /// Fractional refills must accumulate: polling every 100 µs at 1000
    /// tokens/s adds 0.1 token per refill, and the CoreEngine stalled-NQE
    /// retry path depends on these crumbs eventually adding up.
    #[test]
    fn sub_token_refills_accumulate() {
        let mut b = TokenBucket::new(1000.0, 10.0, 0);
        assert!(b.try_consume(10.0, 0));
        for poll in 1..=100u64 {
            b.available(poll * 100_000);
        }
        // 10 ms elapsed at 1000/s: ~10 tokens back (modulo float rounding,
        // so ask for a hair less than the exact sum).
        assert!((b.available(10_000_000) - 10.0).abs() < 1e-6);
        assert!(b.try_consume(10.0 - 1e-6, 10_000_000));
    }

    /// Virtual time observed out of order (e.g. components polled with an
    /// older timestamp) must neither panic nor mint tokens.
    #[test]
    fn backwards_time_is_ignored() {
        let mut b = TokenBucket::new(1000.0, 5.0, 1_000_000_000);
        assert!(b.try_consume(5.0, 1_000_000_000));
        assert_eq!(b.available(0), 0.0);
        assert!(!b.try_consume(1.0, 500_000_000));
        // Time moving forward again resumes refilling from the high-water
        // mark, not from the stale timestamp.
        assert!(b.available(1_500_000_000) > 0.0);
    }

    /// A zero-rate bucket is a pure burst allowance: once spent, it throttles
    /// forever.
    #[test]
    fn zero_rate_bucket_never_refills() {
        let mut b = TokenBucket::new(0.0, 3.0, 0);
        assert!(b.try_consume(3.0, 0));
        assert!(!b.try_consume(1.0, u64::MAX / 2));
        assert_eq!(b.available(u64::MAX / 2), 0.0);
    }

    #[test]
    fn gbps_constructor_rate() {
        let mut b = TokenBucket::for_gbps(1.0, 0);
        assert!((b.rate_per_sec() - 1.25e8).abs() < 1.0);
        // Draining continuously for one second at 1 Gbps grants ~125 MB.
        let mut granted = 0.0;
        for ms in 0..1000u64 {
            granted += b.consume_up_to(1e9, ms * 1_000_000);
        }
        assert!(granted > 1.24e8 && granted < 1.27e8, "granted {granted}");
    }

    #[test]
    fn rate_update_applies_from_now() {
        let mut b = TokenBucket::new(100.0, 1.0, 0);
        b.set_rate_per_sec(1000.0, 0);
        let mut granted = 0.0;
        for ms in 0..1000u64 {
            granted += b.consume_up_to(1e9, ms * 1_000_000);
        }
        assert!(granted > 995.0 && granted < 1005.0, "granted {granted}");
    }
}
