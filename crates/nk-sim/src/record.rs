//! Measurement recorders used by the experiments.

use serde::{Deserialize, Serialize};

/// A cumulative counter with rate computation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Counter {
    total: u64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.total += n;
    }

    /// Current total.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Average rate per second over `elapsed_ns` nanoseconds.
    pub fn rate_per_sec(&self, elapsed_ns: u64) -> f64 {
        if elapsed_ns == 0 {
            0.0
        } else {
            self.total as f64 * 1e9 / elapsed_ns as f64
        }
    }

    /// Interpret the counter as bytes and return the average throughput in
    /// Gbps over `elapsed_ns`.
    pub fn gbps(&self, elapsed_ns: u64) -> f64 {
        self.rate_per_sec(elapsed_ns) * 8.0 / 1e9
    }
}

/// A (time, value) series sampled by the experiments, e.g. the per-VM
/// throughput curves of Figure 21 or the AG traffic of Figure 7.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Append a sample at time `t_secs`.
    pub fn push(&mut self, t_secs: f64, value: f64) {
        self.points.push((t_secs, value));
    }

    /// The recorded samples.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the recorded values (0 for an empty series).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|(_, v)| v).sum::<f64>() / self.points.len() as f64
        }
    }

    /// Maximum recorded value (0 for an empty series).
    pub fn max(&self) -> f64 {
        self.points.iter().map(|(_, v)| *v).fold(0.0, f64::max)
    }

    /// Minimum recorded value (0 for an empty series).
    pub fn min(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points
                .iter()
                .map(|(_, v)| *v)
                .fold(f64::INFINITY, f64::min)
        }
    }

    /// Values within the half-open time window `[from_secs, to_secs)`.
    pub fn window(&self, from_secs: f64, to_secs: f64) -> Vec<f64> {
        self.points
            .iter()
            .filter(|(t, _)| *t >= from_secs && *t < to_secs)
            .map(|(_, v)| *v)
            .collect()
    }

    /// Downsample into bins of `bin_secs`, averaging the values inside each
    /// bin (used to produce the 1-minute bins of Figure 7).
    pub fn rebin(&self, bin_secs: f64) -> TimeSeries {
        let mut out = TimeSeries::new();
        if self.points.is_empty() || bin_secs <= 0.0 {
            return out;
        }
        let end = self.points.last().unwrap().0;
        let mut bin_start = 0.0;
        while bin_start <= end {
            let vals = self.window(bin_start, bin_start + bin_secs);
            if !vals.is_empty() {
                let mean = vals.iter().sum::<f64>() / vals.len() as f64;
                out.push(bin_start, mean);
            }
            bin_start += bin_secs;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_rates() {
        let mut c = Counter::new();
        c.add(1000);
        c.add(500);
        assert_eq!(c.total(), 1500);
        assert!((c.rate_per_sec(1_000_000_000) - 1500.0).abs() < 1e-9);
        assert_eq!(c.rate_per_sec(0), 0.0);
        // 125 MB over one second is 1 Gbps.
        let mut b = Counter::new();
        b.add(125_000_000);
        assert!((b.gbps(1_000_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn series_stats() {
        let mut s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        s.push(0.0, 10.0);
        s.push(1.0, 20.0);
        s.push(2.0, 30.0);
        assert_eq!(s.len(), 3);
        assert!((s.mean() - 20.0).abs() < 1e-12);
        assert_eq!(s.max(), 30.0);
        assert_eq!(s.min(), 10.0);
        assert_eq!(s.window(0.5, 2.5), vec![20.0, 30.0]);
    }

    #[test]
    fn rebin_averages_bins() {
        let mut s = TimeSeries::new();
        for i in 0..10 {
            s.push(i as f64, i as f64);
        }
        let binned = s.rebin(5.0);
        assert_eq!(binned.len(), 2);
        assert!((binned.points()[0].1 - 2.0).abs() < 1e-12);
        assert!((binned.points()[1].1 - 7.0).abs() < 1e-12);
        assert!(s.rebin(0.0).is_empty());
    }
}
