//! Virtual time.

/// Nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// A virtual clock counting nanoseconds since the start of the experiment.
///
/// The simulated execution mode advances the clock in fixed steps; every
/// component reads the same clock, so results are fully deterministic and
/// independent of the machine running the experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Clock {
    now_ns: u64,
}

impl Clock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Clock { now_ns: 0 }
    }

    /// Current time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Current time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_ns / 1_000
    }

    /// Current time in seconds (floating point, for reporting).
    pub fn now_secs(&self) -> f64 {
        self.now_ns as f64 / NANOS_PER_SEC as f64
    }

    /// Advance the clock by `dt_ns` nanoseconds.
    pub fn advance_ns(&mut self, dt_ns: u64) {
        self.now_ns += dt_ns;
    }

    /// Advance the clock by `dt_us` microseconds.
    pub fn advance_us(&mut self, dt_us: u64) {
        self.advance_ns(dt_us * 1_000);
    }

    /// Convert a duration in seconds to nanoseconds.
    pub fn secs_to_ns(secs: f64) -> u64 {
        (secs * NANOS_PER_SEC as f64).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance_us(5);
        assert_eq!(c.now_ns(), 5_000);
        c.advance_ns(500);
        assert_eq!(c.now_us(), 5);
        assert!((c.now_secs() - 5.5e-6).abs() < 1e-12);
    }

    #[test]
    fn secs_conversion() {
        assert_eq!(Clock::secs_to_ns(1.0), NANOS_PER_SEC);
        assert_eq!(Clock::secs_to_ns(0.25), NANOS_PER_SEC / 4);
    }
}
