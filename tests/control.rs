//! Control-plane integration tests: the full observe → decide → act loop.
//!
//! These prove the ISSUE's acceptance scenario end to end: under a ramping
//! multi-tenant workload the autoscaler grows the overloaded NSM, the
//! rebalancer live-migrates at least one VM off it with zero byte-stream
//! corruption (the bursty runner verifies every echoed byte and panics on
//! divergence), the allocation shrinks back once load falls below the low
//! watermark and the cooldown passes, and the whole run replays
//! byte-identically from its seed.

use netkernel::types::{
    ControlPolicy, HostConfig, NsmConfig, NsmId, VmConfig, VmId, VmToNsmPolicy,
};
use netkernel::workload::bursty::{BurstyClient, BurstyConfig, BurstyScenario};
use netkernel::{ControlAction, ControlTarget};

/// Three tenants packed onto NSM 1 with NSM 2 standing by, under a control
/// policy whose accounting clock is small enough that the workload actually
/// saturates it (the thresholds are what's under test, not the testbed's
/// absolute cycle counts).
fn controlled_host() -> HostConfig {
    let policy = ControlPolicy::new()
        .with_epoch_ns(1_000_000) // 10 steps per epoch
        .with_window(2)
        .with_watermarks(0.10, 0.60)
        .with_core_bounds(1, 2)
        .with_cooldown(1)
        .with_rebalance(0.50, 1)
        .with_pool_clock_hz(1_000_000);
    HostConfig::new()
        .with_vm(VmConfig::new(VmId(1)))
        .with_vm(VmConfig::new(VmId(2)))
        .with_vm(VmConfig::new(VmId(3)))
        .with_nsm(NsmConfig::kernel(NsmId(1)))
        .with_nsm(NsmConfig::kernel(NsmId(2)))
        .with_mapping(VmToNsmPolicy::Static(vec![
            (VmId(1), NsmId(1)),
            (VmId(2), NsmId(1)),
            (VmId(3), NsmId(1)),
        ]))
        .with_control(policy)
}

/// Tenants join one by one (ramp-up) and finish (ramp-down).
fn ramping_config() -> BurstyConfig {
    BurstyConfig::new(controlled_host())
        .with_seed(11)
        .with_client(BurstyClient::new(VmId(1), 0).with_total_bytes(96 * 1024))
        .with_client(BurstyClient::new(VmId(2), 1_000_000).with_total_bytes(96 * 1024))
        .with_client(BurstyClient::new(VmId(3), 2_000_000).with_total_bytes(96 * 1024))
}

/// The acceptance scenario: scale-up → rebalance → scale-down, with full
/// data integrity.
#[test]
fn ramping_load_scales_up_rebalances_and_scales_down() {
    let report = BurstyScenario::new(ramping_config()).run().unwrap();

    assert!(report.completed, "{report:?}");
    assert_eq!(
        report.bytes_verified,
        3 * 96 * 1024,
        "every tenant's bytes must be delivered and verified"
    );

    let events = &report.control;
    let first_scale_up = events
        .iter()
        .position(|e| {
            matches!(
                e.action,
                ControlAction::ScaleUp {
                    target: ControlTarget::Nsm(NsmId(1)),
                    ..
                }
            )
        })
        .unwrap_or_else(|| panic!("the overloaded NSM was never scaled up: {events:?}"));
    let first_rebalance = events
        .iter()
        .position(|e| matches!(e.action, ControlAction::Rebalance { from: NsmId(1), .. }))
        .unwrap_or_else(|| panic!("no VM was migrated off the overloaded NSM: {events:?}"));
    let first_scale_down = events
        .iter()
        .position(|e| matches!(e.action, ControlAction::ScaleDown { .. }))
        .unwrap_or_else(|| panic!("the allocation never shrank after the ramp-down: {events:?}"));
    assert!(
        first_scale_up <= first_rebalance,
        "scaling responds before migration: {events:?}"
    );
    assert!(
        first_rebalance < first_scale_down,
        "scale-down belongs to the ramp-down: {events:?}"
    );

    // The rebalancer actually moved someone: at least one tenant's new
    // connections are served by the standby NSM.
    assert!(
        report.final_mapping.values().any(|n| *n == NsmId(2)),
        "no tenant ended up on the standby NSM: {:?}",
        report.final_mapping
    );

    // After the drain the allocation is back at the policy floor.
    assert_eq!(report.final_nsm_cores.get(&NsmId(1)), Some(&1));
    assert!(report.sched.control_actions >= 3);
}

/// Byte-identical determinism: two executions of the same seeded
/// configuration produce the same report, including the same control
/// decision log; a different seed produces a different execution.
#[test]
fn controlled_runs_replay_byte_identically() {
    let a = BurstyScenario::new(ramping_config()).run().unwrap();
    let b = BurstyScenario::new(ramping_config()).run().unwrap();
    assert_eq!(a, b, "two runs of the same seeded scenario diverged");
    assert!(a.completed);
    assert!(!a.control.is_empty());

    // A structurally different ramp (a fourth of the load arrives later)
    // must actually change the execution — the equality above is not
    // vacuous.
    let c = BurstyScenario::new(
        BurstyConfig::new(controlled_host())
            .with_seed(11)
            .with_client(BurstyClient::new(VmId(1), 0).with_total_bytes(96 * 1024))
            .with_client(BurstyClient::new(VmId(2), 1_000_000).with_total_bytes(96 * 1024))
            .with_client(BurstyClient::new(VmId(3), 4_000_000).with_total_bytes(128 * 1024)),
    )
    .run()
    .unwrap();
    assert!(c.completed);
    assert_ne!(
        a.engine, c.engine,
        "a different ramp should change the execution"
    );
}

/// The scaling decisions respect the policy bounds at every point in the
/// log, and utilisations attached to events are sane.
#[test]
fn control_decisions_respect_policy_bounds() {
    let report = BurstyScenario::new(ramping_config()).run().unwrap();
    for ev in &report.control {
        match ev.action {
            ControlAction::ScaleUp {
                from_cores,
                to_cores,
                utilisation,
                ..
            } => {
                assert!(to_cores > from_cores && to_cores <= 2, "{ev:?}");
                assert!(utilisation > 0.60, "{ev:?}");
            }
            ControlAction::ScaleDown {
                from_cores,
                to_cores,
                utilisation,
                ..
            } => {
                assert!(to_cores < from_cores && to_cores >= 1, "{ev:?}");
                assert!(utilisation < 0.10, "{ev:?}");
                assert!((0.0..=1.0).contains(&utilisation), "{ev:?}");
            }
            ControlAction::Rebalance { vm, from, to } => {
                assert_ne!(from, to, "{ev:?}");
                assert!(
                    [VmId(1), VmId(2), VmId(3)].contains(&vm),
                    "unknown VM migrated: {ev:?}"
                );
            }
        }
    }
}
