//! Cluster integration tests: multi-host placement with cross-host VM
//! migration and connection draining.
//!
//! These prove the ISSUE's acceptance scenario end to end: two (or more)
//! hosts sit behind the inter-host fabric (uplinks through the top-of-rack
//! switch), tenants stream byte-verified payloads to a ToR-attached echo
//! server, a cross-host migration drains — new connections land on the
//! destination host's NSM while pinned ones finish on the source, whose NSM
//! share then scales to zero — and the whole run replays byte-identically
//! for a fixed seed (checked through the event-log digest and the full
//! report).

use netkernel::types::{
    ClusterAction, ClusterConfig, ClusterPolicy, HostConfig, HostId, NsmConfig, NsmId, VmConfig,
    VmId, VmToNsmPolicy,
};
use netkernel::workload::cluster::{ClusterScenario, ClusterScenarioConfig, ClusterTenant};

fn host(id: u8, vms: &[u8]) -> HostConfig {
    let mut cfg = HostConfig::new()
        .with_host_id(HostId(id))
        .with_nsm(NsmConfig::kernel(NsmId(1)))
        .with_mapping(VmToNsmPolicy::All(NsmId(1)));
    for vm in vms {
        cfg = cfg.with_vm(VmConfig::new(VmId(*vm)));
    }
    cfg
}

/// Two hosts, one tenant each, both streaming to the ToR-attached server:
/// every byte crosses the inter-host fabric and is verified.
#[test]
fn tenants_on_two_hosts_stream_across_the_fabric() {
    let cluster = ClusterConfig::new()
        .with_host(host(1, &[1]))
        .with_host(host(2, &[2]));
    let report = ClusterScenario::new(
        ClusterScenarioConfig::new(cluster)
            .with_seed(7)
            .with_tenant(ClusterTenant::new(VmId(1), 0).with_total_bytes(32 * 1024))
            .with_tenant(ClusterTenant::new(VmId(2), 500_000).with_total_bytes(32 * 1024)),
    )
    .run()
    .unwrap();
    assert!(report.completed, "{report:?}");
    assert_eq!(report.bytes_verified, 64 * 1024);
    assert_eq!(report.errors_observed, 0);
    assert_eq!(
        report.stats.quiescent_exits + report.stats.round_limit_hits,
        report.stats.steps
    );
}

/// The acceptance scenario: a scripted cross-host migration mid-transfer.
/// The tenant keeps streaming byte-verified throughout, the source share
/// drains (DrainComplete) and scales to zero (ScaleToZero), and the tenant
/// finishes homed on the destination host.
#[test]
fn drained_cross_host_migration_completes_and_retires_the_source_share() {
    let cluster = ClusterConfig::new()
        .with_host(host(1, &[1]))
        .with_host(host(2, &[2]));
    let report = ClusterScenario::new(
        ClusterScenarioConfig::new(cluster)
            .with_seed(11)
            .with_tenant(ClusterTenant::new(VmId(1), 0).with_total_bytes(96 * 1024))
            .with_tenant(ClusterTenant::new(VmId(2), 0).with_total_bytes(32 * 1024))
            // Fire mid-transfer: vm1 has pinned connections at this point.
            .with_migration(2_000_000, VmId(1), HostId(2)),
    )
    .run()
    .unwrap();

    assert!(report.completed, "{report:?}");
    assert_eq!(report.bytes_verified, 128 * 1024);
    assert_eq!(
        report.errors_observed, 0,
        "a drained migration is not an error path: {report:?}"
    );

    // The event log tells the whole story, in order: migrate → drain
    // complete → scale to zero.
    let migrate = report
        .events
        .iter()
        .position(|e| {
            e.action
                == ClusterAction::MigrateVm {
                    vm: VmId(1),
                    from: HostId(1),
                    to: HostId(2),
                    to_nsm: NsmId(1),
                }
        })
        .unwrap_or_else(|| panic!("no migration event: {:?}", report.events));
    let drained = report
        .events
        .iter()
        .position(|e| {
            e.action
                == ClusterAction::DrainComplete {
                    vm: VmId(1),
                    host: HostId(1),
                    nsm: NsmId(1),
                }
        })
        .unwrap_or_else(|| panic!("drain never completed: {:?}", report.events));
    let retired = report
        .events
        .iter()
        .position(|e| {
            e.action
                == ClusterAction::ScaleToZero {
                    host: HostId(1),
                    nsm: NsmId(1),
                }
        })
        .unwrap_or_else(|| panic!("source share never retired: {:?}", report.events));
    assert!(
        migrate < drained && drained <= retired,
        "{:?}",
        report.events
    );

    // The source NSM share is at zero cores; the destination serves both
    // tenants.
    assert_eq!(report.final_nsm_cores[&(HostId(1), NsmId(1))], 0);
    assert!(report.final_nsm_cores[&(HostId(2), NsmId(1))] >= 1);
    assert_eq!(report.final_homes[&VmId(1)], HostId(2));
    assert_eq!(report.stats.migrations, 1);
    assert_eq!(report.stats.drains_completed, 1);
    assert_eq!(report.stats.shares_retired, 1);
}

/// The warm acceptance scenario: a *long-lived* pinned connection (no
/// rotation points — a drained migration would stall until the transfer
/// ends) survives a cross-host warm migration with byte-identical payload
/// delivery, and the source NSM share scales to zero in the same control
/// epoch — no drain wait.
#[test]
fn warm_migration_moves_a_long_lived_connection_without_draining() {
    let cluster = ClusterConfig::new()
        .with_host(host(1, &[1]))
        .with_host(host(2, &[2]))
        .with_uplink_latency_us(2);
    let report = ClusterScenario::new(
        ClusterScenarioConfig::new(cluster)
            .with_seed(11)
            .with_tenant(
                ClusterTenant::new(VmId(1), 0)
                    .with_total_bytes(96 * 1024)
                    .long_lived(),
            )
            .with_tenant(ClusterTenant::new(VmId(2), 0).with_total_bytes(32 * 1024))
            // Fire mid-transfer: vm1's single connection is pinned and busy.
            .with_warm_migration(2_000_000, VmId(1), HostId(2)),
    )
    .run()
    .unwrap();

    assert!(report.completed, "{report:?}");
    assert_eq!(report.bytes_verified, 128 * 1024);
    assert_eq!(report.errors_observed, 0, "a warm handover is not an error");
    assert_eq!(report.reconnects, 0, "the connection must survive the move");
    assert_eq!(report.stats.warm_migrations, 1);
    assert_eq!(report.stats.conns_transplanted, 1);
    assert_eq!(
        report.stats.drains_completed, 0,
        "warm migration must not drain: {report:?}"
    );

    // Milestones in order and in the same instant: warm migrate → handover
    // complete → source share at zero. Zero drain wait.
    let warm = report
        .events
        .iter()
        .position(|e| {
            matches!(
                e.action,
                ClusterAction::WarmMigrateVm {
                    vm: VmId(1),
                    from: HostId(1),
                    to: HostId(2),
                    connections: 1,
                    ..
                }
            )
        })
        .unwrap_or_else(|| panic!("no warm-migrate event: {:?}", report.events));
    let handover = report
        .events
        .iter()
        .position(|e| {
            matches!(
                e.action,
                ClusterAction::WarmHandoverComplete {
                    vm: VmId(1),
                    to: HostId(2),
                    connections: 1,
                }
            )
        })
        .unwrap_or_else(|| panic!("no handover event: {:?}", report.events));
    let retired = report
        .events
        .iter()
        .position(|e| {
            e.action
                == ClusterAction::ScaleToZero {
                    host: HostId(1),
                    nsm: NsmId(1),
                }
        })
        .unwrap_or_else(|| panic!("source share never retired: {:?}", report.events));
    assert!(warm < handover && handover < retired, "{:?}", report.events);
    assert_eq!(
        report.events[warm].at_ns, report.events[retired].at_ns,
        "scale-to-zero must land in the same control epoch as the handover"
    );

    assert_eq!(report.final_homes[&VmId(1)], HostId(2));
    assert_eq!(report.final_nsm_cores[&(HostId(1), NsmId(1))], 0);
    assert!(report.final_nsm_cores[&(HostId(2), NsmId(1))] >= 1);
}

/// Warm-migration determinism: the same seeded warm scenario replays
/// byte-identically — equal reports, equal event-log digests.
#[test]
fn warm_migration_replays_byte_identically() {
    let config = || {
        ClusterScenarioConfig::new(
            ClusterConfig::new()
                .with_host(host(1, &[1]))
                .with_host(host(2, &[2]))
                .with_uplink_latency_us(2),
        )
        .with_seed(23)
        .with_tenant(
            ClusterTenant::new(VmId(1), 0)
                .with_total_bytes(64 * 1024)
                .long_lived(),
        )
        .with_tenant(ClusterTenant::new(VmId(2), 700_000).with_total_bytes(48 * 1024))
        .with_warm_migration(1_500_000, VmId(1), HostId(2))
    };
    let a = ClusterScenario::new(config()).run().unwrap();
    let b = ClusterScenario::new(config()).run().unwrap();
    assert_eq!(a, b, "two runs of the same seeded warm scenario diverged");
    assert_eq!(a.event_digest, b.event_digest);
    assert!(a.completed);
    assert_eq!(a.stats.warm_migrations, 1);

    // A structurally different warm plan changes the execution — the
    // equality above is not vacuous.
    let c = ClusterScenario::new(
        ClusterScenarioConfig::new(
            ClusterConfig::new()
                .with_host(host(1, &[1]))
                .with_host(host(2, &[2]))
                .with_uplink_latency_us(2),
        )
        .with_seed(23)
        .with_tenant(
            ClusterTenant::new(VmId(1), 0)
                .with_total_bytes(64 * 1024)
                .long_lived(),
        )
        .with_tenant(ClusterTenant::new(VmId(2), 700_000).with_total_bytes(48 * 1024))
        .with_warm_migration(2_500_000, VmId(1), HostId(2)),
    )
    .run()
    .unwrap();
    assert!(c.completed);
    assert_ne!(a.event_digest, c.event_digest);
}

/// Byte-identical determinism: two executions of the same seeded
/// configuration produce the same report — including the same event-log
/// digest — and a different seed produces a different execution.
#[test]
fn cluster_runs_replay_byte_identically() {
    let config = || {
        ClusterScenarioConfig::new(
            ClusterConfig::new()
                .with_host(host(1, &[1]))
                .with_host(host(2, &[2])),
        )
        .with_seed(11)
        .with_tenant(ClusterTenant::new(VmId(1), 0).with_total_bytes(64 * 1024))
        .with_tenant(ClusterTenant::new(VmId(2), 1_000_000).with_total_bytes(64 * 1024))
        .with_migration(2_000_000, VmId(1), HostId(2))
    };
    let a = ClusterScenario::new(config()).run().unwrap();
    let b = ClusterScenario::new(config()).run().unwrap();
    assert_eq!(a, b, "two runs of the same seeded cluster diverged");
    assert_eq!(a.event_digest, b.event_digest);
    assert!(a.completed);
    assert!(!a.events.is_empty());

    // A structurally different run (the migration fires later, the second
    // tenant carries more bytes) must actually change the execution — the
    // equality above is not vacuous.
    let c = ClusterScenario::new(
        ClusterScenarioConfig::new(
            ClusterConfig::new()
                .with_host(host(1, &[1]))
                .with_host(host(2, &[2])),
        )
        .with_seed(11)
        .with_tenant(ClusterTenant::new(VmId(1), 0).with_total_bytes(64 * 1024))
        .with_tenant(ClusterTenant::new(VmId(2), 1_000_000).with_total_bytes(96 * 1024))
        .with_migration(3_000_000, VmId(1), HostId(2)),
    )
    .run()
    .unwrap();
    assert!(c.completed);
    assert_ne!(a, c, "a different plan should change the execution");
    assert_ne!(a.event_digest, c.event_digest);
}

/// Placer-driven rebalancing: three tenants packed onto host 1 overload it
/// while host 2 idles; the cluster placement loop migrates at least one VM
/// across hosts, the drain completes, and every byte still verifies.
#[test]
fn placer_migrates_tenants_off_the_overloaded_host() {
    let policy = ClusterPolicy::new()
        .with_epoch_ns(1_000_000)
        .with_window(2)
        .with_thresholds(0.5, 0.3)
        .with_migration_budget(1)
        .with_cooldown(1)
        .with_cross_traffic_weight(0.2)
        .with_pool_clock_hz(1_000_000);
    let cluster = ClusterConfig::new()
        .with_host(host(1, &[1, 2, 3]))
        .with_host(host(2, &[]))
        .with_policy(policy);
    let report = ClusterScenario::new(
        ClusterScenarioConfig::new(cluster)
            .with_seed(11)
            .with_tenant(ClusterTenant::new(VmId(1), 0).with_total_bytes(96 * 1024))
            .with_tenant(ClusterTenant::new(VmId(2), 0).with_total_bytes(96 * 1024))
            .with_tenant(ClusterTenant::new(VmId(3), 1_000_000).with_total_bytes(96 * 1024)),
    )
    .run()
    .unwrap();

    assert!(report.completed, "{report:?}");
    assert_eq!(report.bytes_verified, 3 * 96 * 1024);
    assert_eq!(report.errors_observed, 0);
    assert!(
        report.events.iter().any(|e| matches!(
            e.action,
            ClusterAction::MigrateVm {
                from: HostId(1),
                to: HostId(2),
                ..
            }
        )),
        "the placer never moved a tenant off the overloaded host: {:?}",
        report.events
    );
    // Every placer migration drained cleanly (no share left half-retired);
    // where a tenant ends up homed depends on how the placer rebalances the
    // ramp-down, so only the lifecycle is asserted, not the final placement.
    assert!(report.stats.migrations >= 1);
    assert_eq!(report.stats.drains_completed, report.stats.migrations);
    assert!(
        report
            .events
            .iter()
            .any(|e| matches!(e.action, ClusterAction::DrainComplete { .. })),
        "{:?}",
        report.events
    );
}
