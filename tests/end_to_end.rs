//! Workspace-level integration tests spanning every crate: GuestLib →
//! CoreEngine → NSM → virtual fabric → remote hosts, plus the baseline
//! configuration, exercised through the public facade crate.

use netkernel::host::{BaselineVm, NetKernelHost};
use netkernel::netstack::Segment;
use netkernel::types::{
    HostConfig, NkError, NsmConfig, NsmId, PollEvents, SockAddr, SocketApi, StackKind, VmConfig,
    VmId, VmToNsmPolicy,
};
use netkernel::workload::{ClosedLoopClient, EchoServer};

const REMOTE_IP: u32 = 0x0A00_0500;

fn host_with(stack: StackKind, vms: u8) -> NetKernelHost {
    let nsm = match stack {
        StackKind::Mtcp => NsmConfig::mtcp(NsmId(1)),
        StackKind::SharedMem => NsmConfig::shared_mem(NsmId(1)),
        StackKind::FairShare => NsmConfig::fair_share(NsmId(1)),
        StackKind::Kernel => NsmConfig::kernel(NsmId(1)).with_vcpus(2),
    };
    let mut cfg = HostConfig::new()
        .with_nsm(nsm)
        .with_mapping(VmToNsmPolicy::All(NsmId(1)));
    for vm in 1..=vms {
        cfg = cfg.with_vm(VmConfig::new(VmId(vm)));
    }
    NetKernelHost::new(cfg).unwrap()
}

/// Bulk data integrity: a large buffer sent by the guest arrives intact at a
/// remote server after traversing the full NetKernel pipeline.
#[test]
fn bulk_transfer_is_delivered_intact() {
    let mut host = host_with(StackKind::Kernel, 1);
    let remote = host.add_remote(REMOTE_IP);
    let listener = remote.socket();
    remote.bind(listener, SockAddr::new(0, 9000)).unwrap();
    remote.listen(listener, 8).unwrap();

    let guest = host.guest_mut(VmId(1)).unwrap();
    let sock = guest.socket().unwrap();
    guest.connect(sock, SockAddr::new(REMOTE_IP, 9000)).unwrap();
    host.run(20, 100_000);

    let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
    let mut sent = 0usize;
    let mut received = Vec::new();
    let mut server_conn = None;
    let mut buf = vec![0u8; 32 * 1024];
    for _ in 0..3_000 {
        if sent < payload.len() {
            let guest = host.guest_mut(VmId(1)).unwrap();
            if let Ok(n) = guest.send(sock, &payload[sent..]) {
                sent += n;
            }
        }
        host.run(1, 100_000);
        let remote = host.remote_mut(REMOTE_IP).unwrap();
        if server_conn.is_none() {
            if let Ok((c, _)) = remote.accept(listener) {
                server_conn = Some(c);
            }
        }
        if let Some(c) = server_conn {
            while let Ok(n) = remote.recv(c, &mut buf) {
                if n == 0 {
                    break;
                }
                received.extend_from_slice(&buf[..n]);
            }
        }
        if received.len() >= payload.len() {
            break;
        }
    }
    assert_eq!(received.len(), payload.len(), "incomplete delivery");
    assert_eq!(received, payload, "corrupted delivery");
}

/// The same workload code (epoll echo server + closed-loop client) completes
/// requests both on NetKernel (two guest VMs over the shared-memory NSM) and
/// on the baseline in-guest stack.
#[test]
fn workloads_run_unmodified_on_netkernel_and_baseline() {
    // NetKernel: the server runs in guest VM 1, the client in guest VM 2,
    // both colocated and served by the shared-memory NSM. The exact same
    // EchoServer / ClosedLoopClient types are used below on the baseline.
    let mut host = host_with(StackKind::SharedMem, 2);
    let g1 = host.guest_mut(VmId(1)).unwrap();
    let mut nk_server = EchoServer::start(g1, SockAddr::new(0, 8080), 64).unwrap();
    let mut nk_client = ClosedLoopClient::new(SockAddr::new(0, 8080), 64, 4);
    for _ in 0..400 {
        {
            let g2 = host.guest_mut(VmId(2)).unwrap();
            nk_client.poll(g2);
        }
        host.run(1, 100_000);
        {
            let g1 = host.guest_mut(VmId(1)).unwrap();
            nk_server.poll(g1);
        }
        host.run(1, 100_000);
        if nk_client.completed >= 10 {
            break;
        }
    }
    assert!(
        nk_client.completed >= 10,
        "netkernel (shared-memory NSM): only {} requests completed",
        nk_client.completed
    );

    // Baseline: both ends are baseline VMs on a plain switch; the *same*
    // EchoServer / ClosedLoopClient types are reused.
    let mut switch = netkernel::fabric::VirtualSwitch::<Segment>::new();
    let mut server_vm = BaselineVm::new(1, &mut switch);
    let mut client_vm = BaselineVm::new(2, &mut switch);
    let mut server = EchoServer::start(&mut server_vm, SockAddr::new(0, 80), 64).unwrap();
    let mut client = ClosedLoopClient::new(SockAddr::new(1, 80), 64, 8);
    for i in 1..2_000u64 {
        let now = i * 100_000;
        client.poll(&mut client_vm);
        server.poll(&mut server_vm);
        client_vm.step(now);
        server_vm.step(now);
        switch.step(now);
        if client.completed >= 50 {
            break;
        }
    }
    assert!(
        client.completed >= 50,
        "baseline: {} completed",
        client.completed
    );
    assert!(server.requests >= 50);
}

/// A guest server behind the NSM accepts connections originated by remote
/// clients (passive open through the NetKernel path).
#[test]
fn remote_clients_reach_a_guest_server() {
    let mut host = host_with(StackKind::Kernel, 1);
    let nsm_ip = NetKernelHost::nsm_ip(NsmId(1));

    // Guest server listens on port 8080 (through its NSM's vNIC address).
    let guest = host.guest_mut(VmId(1)).unwrap();
    let listener = guest.socket().unwrap();
    guest.bind(listener, SockAddr::new(0, 8080)).unwrap();
    guest.listen(listener, 16).unwrap();
    guest
        .epoll_register(listener, PollEvents::READABLE)
        .unwrap();
    host.run(5, 100_000);

    // Three remote clients connect and send one request each.
    let remote = host.add_remote(REMOTE_IP);
    let mut clients = Vec::new();
    for _ in 0..3 {
        let c = remote.socket();
        remote.connect(c, SockAddr::new(nsm_ip, 8080), 0).unwrap();
        clients.push(c);
    }
    host.run(30, 100_000);
    {
        let remote = host.remote_mut(REMOTE_IP).unwrap();
        for &c in &clients {
            let _ = remote.send(c, b"request");
        }
    }
    host.run(30, 100_000);

    // The guest accepts all three and sees their data.
    let guest = host.guest_mut(VmId(1)).unwrap();
    let mut accepted = 0;
    let mut readable = 0;
    let mut buf = [0u8; 64];
    while let Ok((conn, _peer)) = guest.accept(listener) {
        accepted += 1;
        if let Ok(n) = guest.recv(conn, &mut buf) {
            if n > 0 {
                readable += 1;
                assert_eq!(&buf[..n], b"request");
            }
        }
    }
    assert_eq!(accepted, 3, "all remote connections must be accepted");
    assert!(readable >= 2, "most connections should have delivered data");
}

/// Multiple VMs share one NSM and an error case: connecting to a closed port
/// surfaces as an error/hang-up on the guest socket.
#[test]
fn shared_nsm_isolation_of_errors() {
    let mut host = host_with(StackKind::Kernel, 2);
    host.add_remote(REMOTE_IP);

    // VM1 connects to a port nobody listens on.
    let g1 = host.guest_mut(VmId(1)).unwrap();
    let bad = g1.socket().unwrap();
    g1.connect(bad, SockAddr::new(REMOTE_IP, 9999)).unwrap();

    // VM2 uses a perfectly fine connection at the same time.
    let remote = host.remote_mut(REMOTE_IP).unwrap();
    let listener = remote.socket();
    remote.bind(listener, SockAddr::new(0, 80)).unwrap();
    remote.listen(listener, 8).unwrap();
    let g2 = host.guest_mut(VmId(2)).unwrap();
    let good = g2.socket().unwrap();
    g2.connect(good, SockAddr::new(REMOTE_IP, 80)).unwrap();

    host.run(40, 100_000);

    let g1 = host.guest_mut(VmId(1)).unwrap();
    let ev1 = g1.poll(bad);
    assert!(
        ev1.error() || ev1.hup(),
        "failed connect must be reported: {ev1:?}"
    );
    assert_eq!(g1.recv(bad, &mut [0u8; 4]), Err(NkError::ConnRefused));

    let g2 = host.guest_mut(VmId(2)).unwrap();
    assert!(
        g2.poll(good).writable(),
        "VM2's connection must be unaffected"
    );
}
