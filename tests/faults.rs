//! Fault-injection integration tests: NSM crashes, live handover, link
//! degradation — all seeded and deterministic.
//!
//! These tests validate the fault subsystem the way robust-systems work
//! validates itself: not with one fixed interleaving, but with explicit
//! adversarial schedules (the end-to-end handover test) and families of
//! randomized schedules replayed from seeds (the property tests). The
//! scenario runner asserts its own invariants — byte integrity of every
//! echoed chunk, NQE conservation across CoreEngine, scheduler accounting —
//! so a passing run certifies much more than "it did not crash".

use netkernel::types::{HostConfig, NsmConfig, NsmId, VmConfig, VmId, VmToNsmPolicy};
use netkernel::workload::scenario::{random_fault_plan, Scenario, ScenarioConfig};
use netkernel::{FaultAction, FaultPlan, LinkFault};

fn two_nsm_host() -> HostConfig {
    HostConfig::new()
        .with_vm(VmConfig::new(VmId(1)))
        .with_nsm(NsmConfig::kernel(NsmId(1)))
        .with_nsm(NsmConfig::kernel(NsmId(2)))
        .with_mapping(VmToNsmPolicy::All(NsmId(1)))
}

/// The acceptance scenario: an NSM crash mid-transfer, the affected socket
/// observes an error, the VM is live-migrated to a standby NSM, and the
/// client/server workload completes with full data integrity — all from a
/// fixed seed.
#[test]
fn nsm_crash_and_live_migration_mid_transfer() {
    // The transfer needs ~2 steps per 2 KiB chunk, so 128 KiB spans well
    // past step 20 (t = 2 ms): the crash lands mid-flight by construction.
    let plan = FaultPlan::new()
        .at(2_000_000, FaultAction::CrashNsm(NsmId(1)))
        .at(
            2_000_000,
            FaultAction::MigrateVm {
                vm: VmId(1),
                to: NsmId(2),
            },
        )
        .at(6_000_000, FaultAction::RestartNsm(NsmId(1)));
    let report = Scenario::new(
        ScenarioConfig::new(two_nsm_host())
            .with_total_bytes(128 * 1024)
            .with_faults(plan),
    )
    .run()
    .unwrap();

    assert!(
        report.completed,
        "transfer did not survive the crash: {report:?}"
    );
    assert_eq!(report.bytes_verified, 128 * 1024);
    assert!(
        report.errors_observed >= 1,
        "the mid-transfer crash must surface on the guest socket: {report:?}"
    );
    assert!(
        report.reconnects >= 1,
        "the client must have reconnected through the standby NSM"
    );
    assert_eq!(report.faults.crashes, 1);
    assert_eq!(report.faults.migrations, 1);
    assert_eq!(report.faults.restarts, 1);
    assert!(
        report.engine.conn_resets >= 1,
        "CoreEngine must reset the crashed NSM's connections"
    );
}

/// A crash with no standby and no migration: the transfer stalls with
/// errors, the host neither panics nor livelocks (every step is bounded),
/// and after the scheduled restart the transfer completes.
#[test]
fn crash_without_standby_recovers_on_restart() {
    let host = HostConfig::new()
        .with_vm(VmConfig::new(VmId(1)))
        .with_nsm(NsmConfig::kernel(NsmId(1)))
        .with_nsm(NsmConfig::kernel(NsmId(2)))
        .with_mapping(VmToNsmPolicy::All(NsmId(1)));
    let plan = FaultPlan::new()
        .at(2_000_000, FaultAction::CrashNsm(NsmId(1)))
        .at(5_000_000, FaultAction::RestartNsm(NsmId(1)));
    let report = Scenario::new(
        ScenarioConfig::new(host)
            .with_total_bytes(128 * 1024)
            .with_faults(plan),
    )
    .run()
    .unwrap();
    assert!(report.completed, "{report:?}");
    assert!(report.errors_observed >= 1);
    // While NSM 1 was down, requests failed fast instead of queueing
    // forever.
    assert!(report.vm.dropped >= 1, "{report:?}");
}

/// Mid-flight link degradation (loss + latency + reordering) never corrupts
/// or duplicates delivered data; retransmissions preserve the transfer.
#[test]
fn link_degradation_mid_transfer_preserves_integrity() {
    let plan = FaultPlan::new()
        .at(
            1_000_000,
            FaultAction::DegradeLink {
                nsm: NsmId(1),
                link: LinkFault::default()
                    .with_loss(0.02)
                    .with_latency_us(100)
                    .with_reorder(0.05),
            },
        )
        .at(
            8_000_000,
            FaultAction::DegradeLink {
                nsm: NsmId(1),
                link: LinkFault::healthy(),
            },
        );
    let report = Scenario::new(
        ScenarioConfig::new(two_nsm_host())
            .with_total_bytes(64 * 1024)
            .with_faults(plan),
    )
    .run()
    .unwrap();
    assert!(report.completed, "{report:?}");
    assert_eq!(report.bytes_verified, 64 * 1024);
    assert_eq!(report.faults.link_changes, 2);
}

/// Property test: N randomized fault schedules from explicit seeds. Every
/// schedule mixes crashes-with-migration, plain migrations and link faults;
/// every run must complete with verified integrity, without panics and
/// without livelock (the step budget bounds the run, `max_poll_rounds`
/// bounds each step). Failures print the seed for replay.
#[test]
fn randomized_fault_schedules_preserve_invariants() {
    for seed in 1..=6u64 {
        let host = two_nsm_host();
        let plan = random_fault_plan(seed, &host, VmId(1), 12_000_000).expect("plan generation");
        let report = Scenario::new(
            ScenarioConfig::new(host)
                .with_seed(seed)
                .with_total_bytes(96 * 1024)
                .with_faults(plan.clone()),
        )
        .run()
        .unwrap();
        assert!(
            report.completed,
            "seed {seed}: transfer incomplete under plan {plan:?}: {report:?}"
        );
        assert_eq!(
            report.bytes_verified,
            96 * 1024,
            "seed {seed}: byte count mismatch"
        );
        assert_eq!(
            report.faults.applied as usize,
            plan.len(),
            "seed {seed}: not every scheduled fault was applied"
        );
    }
}

/// Determinism: the same `HostConfig` + `FaultPlan` + seed produces
/// byte-identical statistics — engine, scheduler, guest, fault and stack
/// counters — across two independent runs.
#[test]
fn identical_seeds_replay_identical_executions() {
    let build = || {
        let host = two_nsm_host();
        let plan = random_fault_plan(42, &host, VmId(1), 12_000_000).unwrap();
        ScenarioConfig::new(host)
            .with_seed(42)
            .with_total_bytes(96 * 1024)
            .with_faults(plan)
    };
    let a = Scenario::new(build()).run().unwrap();
    let b = Scenario::new(build()).run().unwrap();
    assert_eq!(a, b, "two runs of the same seeded scenario diverged");
    assert!(a.completed);

    // A different fault-schedule seed must actually change the execution —
    // the equality above is not vacuous.
    let host = two_nsm_host();
    let plan = random_fault_plan(7, &host, VmId(1), 12_000_000).unwrap();
    let c = Scenario::new(
        ScenarioConfig::new(host)
            .with_seed(42)
            .with_total_bytes(96 * 1024)
            .with_faults(plan),
    )
    .run()
    .unwrap();
    assert!(c.completed);
    assert_ne!(
        a.faults, c.faults,
        "different fault seeds should not replay identically"
    );
}
